package nn

import (
	"math"
	"testing"

	"deep15pf/internal/tensor"
)

// TestConvDirectBitwiseMatchesIm2col pins the im2col-free 3x3 stride-1
// inference kernel bitwise against the batched im2col+GEMM path, serial
// and parallel, including the chunked-GEMM regime.
func TestConvDirectBitwiseMatchesIm2col(t *testing.T) {
	rng := tensor.NewRNG(41)
	c := NewConv2D("cd", 3, 5, 3, 1, 1, rng)
	x := randBatch(rng, 6, []int{3, 9, 7})
	for _, workers := range []int{1, 3} {
		prev := tensor.SetWorkers(workers)
		evalDirect = false
		want := c.Forward(x, false)
		evalDirect = true
		got := c.Forward(x, false)
		requireBitwise(t, "direct conv", got, want)
		tensor.SetWorkers(prev)
	}

	// Pad 0 exercises the no-border geometry; tiny budget forces the
	// im2col path to chunk.
	c0 := NewConv2D("cd0", 2, 3, 3, 1, 0, rng)
	x0 := randBatch(rng, 4, []int{2, 8, 8})
	oldBudget := evalColBudget
	evalColBudget = 64
	evalDirect = false
	want := c0.Forward(x0, false)
	evalColBudget = oldBudget
	evalDirect = true
	got := c0.Forward(x0, false)
	requireBitwise(t, "direct conv pad0", got, want)
}

// TestQuantPlanMatchesFloat checks the int8 plan tracks the fp32 plan
// within the quantisation error budget on a realistic little network,
// with both dynamic and calibrated activation scales, and that argmax
// decisions almost always agree.
func TestQuantPlanMatchesFloat(t *testing.T) {
	net := planTestNet(7)
	rng := tensor.NewRNG(13)
	x := randBatch(rng, 8, net.InShape)

	ref := net.Infer(x)

	check := func(name string, qp *QuantPlan) {
		t.Helper()
		got := qp.Forward(x)
		if got.Len() != ref.Len() {
			t.Fatalf("%s: output size %d, want %d", name, got.Len(), ref.Len())
		}
		var maxAbs float64
		for _, v := range ref.Data {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		// int8 conv stacks lose ~1% relative accuracy per layer; 10% of
		// the output range is a loose sanity bound — the real gate is the
		// end-to-end accuracy delta in the serving benchmark.
		tol := 0.1*maxAbs + 1e-3
		for i := range ref.Data {
			if d := math.Abs(float64(got.Data[i] - ref.Data[i])); d > tol {
				t.Errorf("%s: out[%d] = %g vs fp32 %g (|Δ|=%g > %g)", name, i, got.Data[i], ref.Data[i], d, tol)
			}
		}
	}

	check("dynamic", CompileQuantized(net, 8, nil, nil))

	calib := CalibrateActivations(net, x)
	calib = MergeCalibration(calib, CalibrateActivations(net, randBatch(rng, 4, net.InShape)))
	if calib[0] == 0 {
		t.Fatal("calibration recorded nothing for the first conv")
	}
	check("calibrated", CompileQuantized(net, 8, calib, nil))
}

// TestQuantPlanWarmNoAlloc is the 0-alloc gate for the int8 serving path.
func TestQuantPlanWarmNoAlloc(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	net := planTestNet(11)
	qp := CompileQuantized(net, 4, nil, nil)
	x := randBatch(tensor.NewRNG(3), 4, net.InShape)
	qp.Forward(x) // warm
	if allocs := testing.AllocsPerRun(10, func() { qp.Forward(x) }); allocs > 0 {
		t.Errorf("warm QuantPlan.Forward allocates %v/run, want 0", allocs)
	}
}

// TestQuantPlanCacheBuckets mirrors the fp32 plan-cache policy.
func TestQuantPlanCacheBuckets(t *testing.T) {
	net := planTestNet(5)
	pc := NewQuantPlanCache(net, nil, nil)
	rng := tensor.NewRNG(9)
	for _, n := range []int{1, 2, 3, 5, 8} {
		out := pc.Forward(randBatch(rng, n, net.InShape))
		if out.Shape[0] != n {
			t.Fatalf("batch %d: output batch %d", n, out.Shape[0])
		}
	}
	if len(pc.plans) != 4 { // buckets 1,2,4,8
		t.Errorf("cache holds %d plans, want 4", len(pc.plans))
	}
	pc.Release()
	if len(pc.plans) != 0 {
		t.Errorf("release left %d plans", len(pc.plans))
	}
}

// TestQuantPlanChunkedConv forces the conv patch budget down so one batch
// spans several GemmS8 calls and pins it against the unchunked result.
func TestQuantPlanChunkedConv(t *testing.T) {
	net := planTestNet(21)
	x := randBatch(tensor.NewRNG(2), 6, net.InShape)
	want := CompileQuantized(net, 6, nil, nil).Forward(x).Clone()
	old := qcolBudget
	qcolBudget = 256 // a handful of patches per chunk
	defer func() { qcolBudget = old }()
	got := CompileQuantized(net, 6, nil, nil).Forward(x)
	requireBitwise(t, "chunked int8 conv", got, want)
}

func TestWeightScales(t *testing.T) {
	net := planTestNet(3)
	ws := WeightScales(net)
	for _, name := range []string{"c1.weight", "c2.weight", "fc.weight"} {
		if len(ws[name]) == 0 {
			t.Errorf("no scales recorded for %s", name)
		}
	}
	if len(ws["c1.weight"]) != 4 {
		t.Errorf("c1.weight has %d channel scales, want 4", len(ws["c1.weight"]))
	}
	for name, s := range ws {
		for i, v := range s {
			if !(v > 0) {
				t.Errorf("%s scale[%d] = %g, want > 0", name, i, v)
			}
		}
	}
}
