package nn

import (
	"fmt"

	"deep15pf/internal/tensor"
)

// Conv2D is a 2-D convolution lowered to im2col + GEMM, the same strategy
// as the MKL 2017 direct-convolution primitives the paper builds on. Weights
// are stored [OutC, InC·KH·KW] so the forward pass of every output channel
// is one row of a single GEMM.
type Conv2D struct {
	LayerName    string
	InC, OutC    int
	KH, KW       int
	Stride, Pad  int
	Weight, Bias *Param
	state        PlanState // legacy-path state (direct Forward/Backward)
	noBias       bool
}

// evalColBudget caps (in float32s) the lowered column matrix the inference
// path builds at once. Training lowers per sample to bound memory at paper
// scale (see Backward); inference instead lowers as many whole samples as
// fit this budget and multiplies them in a single GEMM, which amortises the
// small-GEMM inefficiency that dominates per-sample serving cost. 2M floats
// (8 MiB) covers any realistic serving batch of the small models while
// degrading gracefully to per-sample lowering at paper scale. It is a
// variable only so tests can force the chunked path.
var evalColBudget = 2 << 20

// evalDirect gates the im2col-free inference path for the dominant 3x3
// stride-1 shape. A variable only so tests can pin the two paths bitwise
// against each other.
var evalDirect = true

// NewConv2D constructs a convolution layer with He-initialised weights.
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *tensor.RNG) *Conv2D {
	c := &Conv2D{
		LayerName: name,
		InC:       inC, OutC: outC,
		KH: k, KW: k,
		Stride: stride, Pad: pad,
	}
	c.Weight = &Param{
		Name: name + ".weight",
		W:    tensor.New(outC, inC*k*k),
		Grad: tensor.New(outC, inC*k*k),
	}
	c.Bias = &Param{
		Name: name + ".bias",
		W:    tensor.New(outC),
		Grad: tensor.New(outC),
	}
	HeInit(c.Weight.W, inC*k*k, rng)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.LayerName }

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.noBias {
		return []*Param{c.Weight}
	}
	return []*Param{c.Weight, c.Bias}
}

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("nn: %s expects [C=%d,H,W] input shape, got %v", c.LayerName, c.InC, in))
	}
	oh := tensor.ConvOut(in[1], c.KH, c.Stride, c.Pad)
	ow := tensor.ConvOut(in[2], c.KW, c.Stride, c.Pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s output collapses for input %v", c.LayerName, in))
	}
	return []int{c.OutC, oh, ow}
}

// evalChunk returns how many whole samples the inference path lowers at
// once for an oh×ow output, clamped to the batch size.
func (c *Conv2D) evalChunk(n, oh, ow int) int {
	k := c.InC * c.KH * c.KW
	chunk := evalColBudget / (k * oh * ow)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > n {
		chunk = n
	}
	return chunk
}

// Reserve implements PlannedLayer.
func (c *Conv2D) Reserve(st *PlanState, a *tensor.Arena, n int, in []int, train bool) {
	out := c.OutShape(in)
	oh, ow := out[1], out[2]
	k := c.InC * c.KH * c.KW
	cols := oh * ow
	if train {
		st.Col = scratch(a, st.Col, k*cols)
		st.Dcol = scratch(a, st.Dcol, k*cols)
		return
	}
	chunk := c.evalChunk(n, oh, ow)
	st.Col = scratch(a, st.Col, k*chunk*cols)
	st.Eval = scratch(a, st.Eval, c.OutC*chunk*cols)
}

// Forward implements Layer. x is [N, InC, H, W]. With train=false it takes
// the batched inference path, which produces bitwise-identical outputs
// (same per-element accumulation order) without retaining backward state.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: %s got input shape %v, want [N,%d,H,W]", c.LayerName, x.Shape, c.InC))
	}
	out := tensor.New(x.Shape[0], c.OutC,
		tensor.ConvOut(x.Shape[2], c.KH, c.Stride, c.Pad),
		tensor.ConvOut(x.Shape[3], c.KW, c.Stride, c.Pad))
	c.ForwardInto(&c.state, out, x, train)
	return out
}

// ForwardInto implements PlannedLayer.
func (c *Conv2D) ForwardInto(st *PlanState, y, x *tensor.Tensor, train bool) {
	if x.Rank() != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: %s got input shape %v, want [N,%d,H,W]", c.LayerName, x.Shape, c.InC))
	}
	if !train {
		c.forwardEval(st, y, x)
		return
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOut(h, c.KH, c.Stride, c.Pad)
	ow := tensor.ConvOut(w, c.KW, c.Stride, c.Pad)
	k := c.InC * c.KH * c.KW
	cols := oh * ow
	st.Col = scratch(nil, st.Col, k*cols)
	col := st.Col[:k*cols]
	inStride := c.InC * h * w
	outStride := c.OutC * cols
	for s := 0; s < n; s++ {
		img := x.Data[s*inStride : (s+1)*inStride]
		tensor.Im2col(img, c.InC, h, w, c.KH, c.KW, c.Stride, c.Pad, col)
		ys := y.Data[s*outStride : (s+1)*outStride]
		tensor.Gemm(false, false, c.OutC, cols, k, 1, c.Weight.W.Data, col, 0, ys)
		if !c.noBias {
			for f := 0; f < c.OutC; f++ {
				b := c.Bias.W.Data[f]
				if b == 0 {
					continue
				}
				row := ys[f*cols : (f+1)*cols]
				for i := range row {
					row[i] += b
				}
			}
		}
	}
	st.X = x
}

// forwardEval is the inference fast path: it lowers as many samples as the
// column budget allows into one wide matrix and multiplies the whole chunk
// in a single GEMM, then scatters the channel-major GEMM output back to
// NCHW while applying the bias. Per sample this performs exactly the same
// floating-point operations in the same order as the training path — only
// the loop structure changes — so eval and train forward agree bitwise. No
// backward state is kept: the state does not retain x, and Backward panics
// until the next train-mode Forward.
func (c *Conv2D) forwardEval(st *PlanState, y, x *tensor.Tensor) {
	if evalDirect && c.Stride == 1 && c.KH == 3 && c.KW == 3 {
		n := x.Shape[0]
		// The direct path parallelises over samples; prefer the batched
		// GEMM (which splits over output channels) when the batch is too
		// small to feed every worker.
		if tensor.SerialFor(n) || n >= tensor.Workers() {
			c.forwardEvalDirect(y, x)
			st.X = nil
			return
		}
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOut(h, c.KH, c.Stride, c.Pad)
	ow := tensor.ConvOut(w, c.KW, c.Stride, c.Pad)
	k := c.InC * c.KH * c.KW
	cols := oh * ow
	chunk := c.evalChunk(n, oh, ow)
	st.Col = scratch(nil, st.Col, k*chunk*cols)
	st.Eval = scratch(nil, st.Eval, c.OutC*chunk*cols)
	inStride := c.InC * h * w
	outStride := c.OutC * cols
	for s0 := 0; s0 < n; s0 += chunk {
		m := chunk
		if m > n-s0 {
			m = n - s0
		}
		mcols := m * cols
		col := st.Col[:k*mcols]
		for i := 0; i < m; i++ {
			img := x.Data[(s0+i)*inStride : (s0+i+1)*inStride]
			tensor.Im2colInto(img, c.InC, h, w, c.KH, c.KW, c.Stride, c.Pad, col, mcols, i*cols)
		}
		ge := st.Eval[:c.OutC*mcols]
		tensor.Gemm(false, false, c.OutC, mcols, k, 1, c.Weight.W.Data, col, 0, ge)
		for i := 0; i < m; i++ {
			dst := y.Data[(s0+i)*outStride : (s0+i+1)*outStride]
			for f := 0; f < c.OutC; f++ {
				src := ge[f*mcols+i*cols : f*mcols+(i+1)*cols]
				d := dst[f*cols : (f+1)*cols]
				var b float32
				if !c.noBias {
					b = c.Bias.W.Data[f]
				}
				if b == 0 {
					copy(d, src)
				} else {
					for j := range src {
						d[j] = src[j] + b
					}
				}
			}
		}
	}
	st.X = nil
}

// forwardEvalDirect is the im2col-free inference kernel for 3x3 stride-1
// convolutions (the shape that dominates the paper's models). Instead of
// materialising the K×cols column matrix it walks the weight taps
// p=(c,ky,kx) in im2col order and accumulates each tap as a shifted-row
// axpy over the input, clipping at the borders. Per output element this
// performs the identical single-rounded multiply-adds in the identical
// p-ascending order as im2col+GEMM — border clipping only removes
// additions of ±0 that cannot change a finite partial sum, and the
// zero-tap skip mirrors the GEMM kernel's — so the two paths agree
// bitwise. Bias is applied after accumulation, as one add, exactly like
// the batched path's copy-out. The win is bandwidth: nothing is written
// to or re-read from a 9x-expanded scratch matrix.
func (c *Conv2D) forwardEvalDirect(y, x *tensor.Tensor) {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOut(h, c.KH, c.Stride, c.Pad)
	ow := tensor.ConvOut(w, c.KW, c.Stride, c.Pad)
	cols := oh * ow
	inStride := c.InC * h * w
	outStride := c.OutC * cols
	if tensor.SerialFor(n) {
		// No closure on the serial path: warmed plans must stay 0-alloc.
		for s := 0; s < n; s++ {
			c.directSample(x.Data[s*inStride:(s+1)*inStride],
				y.Data[s*outStride:(s+1)*outStride], h, w, oh, ow)
		}
		return
	}
	tensor.ParallelFor(n, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			c.directSample(x.Data[s*inStride:(s+1)*inStride],
				y.Data[s*outStride:(s+1)*outStride], h, w, oh, ow)
		}
	})
}

func (c *Conv2D) directSample(img, out []float32, h, w, oh, ow int) {
	cols := oh * ow
	k := c.InC * c.KH * c.KW
	for f := 0; f < c.OutC; f++ {
		yf := out[f*cols : (f+1)*cols]
		clear(yf)
		wf := c.Weight.W.Data[f*k : (f+1)*k]
		p := 0
		for ch := 0; ch < c.InC; ch++ {
			chOff := ch * h * w
			for ky := 0; ky < c.KH; ky++ {
				for kx := 0; kx < c.KW; kx++ {
					av := wf[p]
					p++
					if av == 0 {
						continue
					}
					// Output columns whose input column ix = ox-Pad+kx is
					// in bounds; rows clip per oy below.
					oxLo := c.Pad - kx
					if oxLo < 0 {
						oxLo = 0
					}
					oxHi := w + c.Pad - kx
					if oxHi > ow {
						oxHi = ow
					}
					if oxHi <= oxLo {
						continue
					}
					ixLo := oxLo - c.Pad + kx
					span := oxHi - oxLo
					for oy := 0; oy < oh; oy++ {
						iy := oy - c.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						rowOff := chOff + iy*w + ixLo
						tensor.Axpy(av, img[rowOff:rowOff+span], yf[oy*ow+oxLo:oy*ow+oxHi])
					}
				}
			}
		}
		if !c.noBias {
			if b := c.Bias.W.Data[f]; b != 0 {
				for i := range yf {
					yf[i] += b
				}
			}
		}
	}
}

// Backward implements Layer. dout is [N, OutC, OH, OW]; returns dx with the
// input's shape. The im2col matrix is recomputed per sample (caching it for
// the whole batch would cost N·K·OH·OW floats — hundreds of MB at paper
// sizes), trading flops for memory exactly as Caffe does.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	x := c.state.X
	if x == nil {
		panic("nn: " + c.LayerName + " Backward before Forward")
	}
	dx := tensor.New(x.Shape...)
	c.BackwardInto(&c.state, dx, dout)
	return dx
}

// BackwardInto implements PlannedLayer.
func (c *Conv2D) BackwardInto(st *PlanState, dx, dout *tensor.Tensor) {
	x := st.X
	if x == nil {
		panic("nn: " + c.LayerName + " Backward before Forward")
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOut(h, c.KH, c.Stride, c.Pad)
	ow := tensor.ConvOut(w, c.KW, c.Stride, c.Pad)
	k := c.InC * c.KH * c.KW
	cols := oh * ow
	col := st.Col[:k*cols]
	st.Dcol = scratch(nil, st.Dcol, k*cols)
	dcol := st.Dcol[:k*cols]
	clear(dx.Data)
	inStride := c.InC * h * w
	outStride := c.OutC * cols
	for s := 0; s < n; s++ {
		dy := dout.Data[s*outStride : (s+1)*outStride]
		// dW += dy · colᵀ
		img := x.Data[s*inStride : (s+1)*inStride]
		tensor.Im2col(img, c.InC, h, w, c.KH, c.KW, c.Stride, c.Pad, col)
		tensor.Gemm(false, true, c.OutC, k, cols, 1, dy, col, 1, c.Weight.Grad.Data)
		// db += row sums of dy
		if !c.noBias {
			for f := 0; f < c.OutC; f++ {
				row := dy[f*cols : (f+1)*cols]
				var sum float32
				for _, v := range row {
					sum += v
				}
				c.Bias.Grad.Data[f] += sum
			}
		}
		// dx = col2im(Wᵀ · dy)
		tensor.Gemm(true, false, k, cols, c.OutC, 1, c.Weight.W.Data, dy, 0, dcol)
		tensor.Col2im(dcol, c.InC, h, w, c.KH, c.KW, c.Stride, c.Pad, dx.Data[s*inStride:(s+1)*inStride])
	}
}

// FLOPs implements Layer: forward is one M×N×K GEMM per sample; backward is
// two (weight gradient and data gradient), the standard 1:2 fwd:bwd ratio.
func (c *Conv2D) FLOPs(in []int) FlopCount {
	out := c.OutShape(in)
	m := c.OutC
	k := c.InC * c.KH * c.KW
	cols := out[1] * out[2]
	fwd := tensor.GemmFLOPs(m, cols, k)
	// Executed estimate: output channels and spatial columns pad to the
	// SIMD lane width; the reduction dimension pads on the channel factor.
	kPad := padTo(c.InC, lane) * int64(c.KH*c.KW)
	fwdExec := 2 * padTo(m, lane) * padTo(cols, lane) * kPad
	return FlopCount{Fwd: fwd, Bwd: 2 * fwd, FwdExecuted: fwdExec, BwdExecuted: 2 * fwdExec}
}
