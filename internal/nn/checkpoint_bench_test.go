package nn

import (
	"bytes"
	"io"
	"testing"

	"deep15pf/internal/tensor"
)

// benchParams is a checkpoint-shaped parameter set: one large conv-like blob
// plus a few small ones, ~4 MiB total — the scale where the encode loop, not
// the filesystem, decides SaveWeights/LoadWeights throughput.
func benchParams(b *testing.B) []*Param {
	b.Helper()
	rng := tensor.NewRNG(9)
	mk := func(name string, shape ...int) *Param {
		w := tensor.New(shape...)
		rng.FillNorm(w, 0, 1)
		return &Param{Name: name, W: w, Grad: tensor.New(shape...)}
	}
	return []*Param{
		mk("conv.w", 128, 128, 3, 3),
		mk("conv.b", 128),
		mk("fc.w", 512, 1024),
		mk("fc.b", 512),
	}
}

func paramBytes(params []*Param) int64 {
	var n int64
	for _, p := range params {
		n += p.Bytes()
	}
	return n
}

func BenchmarkSaveWeights(b *testing.B) {
	params := benchParams(b)
	b.SetBytes(paramBytes(params))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SaveWeights(io.Discard, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadWeights(b *testing.B) {
	params := benchParams(b)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, params); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.SetBytes(paramBytes(params))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := LoadWeights(bytes.NewReader(blob), params); err != nil {
			b.Fatal(err)
		}
	}
}
