package nn

import (
	"fmt"

	"deep15pf/internal/quant"
	"deep15pf/internal/tensor"
)

// QuantPlan is the int8 sibling of Plan: a compiled inference schedule in
// which every Conv2D and Dense step runs on the integer GEMM
// (tensor.GemmS8) instead of the float one. Weights quantise once at
// compile time to s8 with one symmetric scale per output channel
// (quant.ScaleForChannels); activations quantise per layer to u8 with
// zero-point 128, either with a frozen calibrated scale or dynamically
// from the batch's max magnitude. Activations between layers stay fp32 —
// ReLU, pooling and reshapes run their ordinary eval kernels — so only
// the GEMM-shaped work changes representation, which is where all the
// time goes and the only place int8 pays.
//
// Requantisation: with activation scale sA, per-channel weight scale
// sW[f], integer accumulator acc and weight row sum rowSum[f],
//
//	y = sA·sW[f]·(acc − 128·rowSum[f]) + bias[f]
//
// because Σ w·v ≈ Σ (wq·sW)·((q−128)·sA) = sA·sW·(Σ wq·q − 128·Σ wq).
// Conv padding writes the zero-point byte, so its contribution is
// exactly cancelled by the same rowSum correction.
//
// Like Plan, a QuantPlan is single-goroutine, its Forward output is
// plan-owned (valid until the next call), and the warm path allocates
// nothing. Weights are captured at compile time: recompile after any
// LoadWeights.
type QuantPlan struct {
	net      *Network
	capacity int
	arena    *tensor.Arena
	steps    []qplanStep
}

type qplanStep struct {
	layer    PlannedLayer // fp32 fallback when q == nil
	st       PlanState
	q        *qkernel // int8 kernel for Conv2D/Dense steps
	outShape []int
	outPer   int
	ySlab    []float32
	y        *tensor.Tensor
}

// qcolBudget caps (in bytes) the quantized patch matrix one conv step
// lowers at once, mirroring evalColBudget on the float path. A variable
// only so tests can force chunking.
var qcolBudget = 2 << 20

// qkernel holds one quantized layer: exactly one of conv/dense is set.
type qkernel struct {
	conv  *Conv2D
	dense *Dense

	wq       []int8    // [Out, K] row-major, K contiguous per channel
	wscale   []float32 // per output channel
	rowSum   []int32   // Σ_p wq[f][p], the zero-point correction
	actScale float32   // frozen activation scale; 0 = dynamic per batch

	xq    []uint8 // conv: one sample's quantized image; dense: whole batch
	colU8 []uint8 // conv only: patch-major lowered chunk
	acc   []int32 // integer GEMM output
	chunk int     // conv: samples lowered per GemmS8 call

	h, w, oh, ow int // conv geometry at the plan's fixed input shape
}

// CalibrateActivations runs one fp32 forward pass over x and returns the
// max input magnitude seen at each layer (indexed like net.Layers;
// non-quantizable layers record 0). Merge several batches with
// MergeCalibration, then hand the result to CompileQuantized to freeze
// activation scales. Calibration is an offline pass and allocates freely.
func CalibrateActivations(net *Network, x *tensor.Tensor) []float32 {
	stats := make([]float32, len(net.Layers))
	cur := x
	for i, l := range net.Layers {
		switch l.(type) {
		case *Conv2D, *Dense:
			stats[i] = quant.MaxAbs(cur.Data)
		}
		cur = l.Forward(cur, false)
	}
	return stats
}

// MergeCalibration folds b into a elementwise-max and returns a.
func MergeCalibration(a, b []float32) []float32 {
	if len(a) != len(b) {
		panic("nn: MergeCalibration length mismatch")
	}
	for i, v := range b {
		if v > a[i] {
			a[i] = v
		}
	}
	return a
}

// CompileQuantized builds an int8 inference plan for batches of up to
// capacity samples. calib, if non-nil, must come from CalibrateActivations
// over this network (frozen activation scales); nil quantises activations
// dynamically per batch. arena == nil creates a private arena for the fp32
// interlayer slabs.
func CompileQuantized(net *Network, capacity int, calib []float32, arena *tensor.Arena) *QuantPlan {
	if capacity < 1 {
		panic("nn: quant plan capacity must be positive")
	}
	if calib != nil && len(calib) != len(net.Layers) {
		panic("nn: calibration stats do not match network depth")
	}
	if arena == nil {
		arena = tensor.NewArena()
	}
	p := &QuantPlan{net: net, capacity: capacity, arena: arena}
	p.steps = make([]qplanStep, len(net.Layers))
	in := net.InShape
	for i, l := range net.Layers {
		out := l.OutShape(in)
		s := &p.steps[i]
		s.outShape = append([]int(nil), out...)
		s.outPer = shapeElems(out)
		s.ySlab = arena.Get(capacity * s.outPer)
		s.y = tensor.FromSlice(s.ySlab, append([]int{capacity}, out...)...)
		switch ll := l.(type) {
		case *Conv2D:
			s.q = newQConv(ll, capacity, in, calibStat(calib, i))
		case *Dense:
			s.q = newQDense(ll, capacity, calibStat(calib, i))
		default:
			pl, ok := l.(PlannedLayer)
			if !ok {
				panic(fmt.Sprintf("nn: layer %s (%T) does not implement PlannedLayer; cannot compile a quantized plan", l.Name(), l))
			}
			s.layer = pl
			pl.Reserve(&s.st, arena, capacity, in, false)
		}
		in = out
	}
	return p
}

// calibStat returns (frozen scale, 0 meaning dynamic) for layer i.
func calibStat(calib []float32, i int) float32 {
	if calib == nil {
		return 0
	}
	if calib[i] == 0 {
		// Calibrated but the layer never saw a nonzero input: any scale
		// works; 1 matches quant.ScaleFor's fallback.
		return 1
	}
	return calib[i] / 127
}

func rowSums(wq []int8, k int) []int32 {
	sums := make([]int32, len(wq)/k)
	for f := range sums {
		var s int32
		for _, v := range wq[f*k : (f+1)*k] {
			s += int32(v)
		}
		sums[f] = s
	}
	return sums
}

func newQConv(c *Conv2D, capacity int, in []int, actScale float32) *qkernel {
	k := c.InC * c.KH * c.KW
	q := &qkernel{conv: c, actScale: actScale, h: in[1], w: in[2]}
	q.oh = tensor.ConvOut(q.h, c.KH, c.Stride, c.Pad)
	q.ow = tensor.ConvOut(q.w, c.KW, c.Stride, c.Pad)
	cols := q.oh * q.ow
	q.wscale = quant.ScaleForChannels(c.Weight.W.Data, k)
	q.wq = make([]int8, c.OutC*k)
	quant.QuantizeChannelsInto(q.wq, c.Weight.W.Data, q.wscale, k)
	q.rowSum = rowSums(q.wq, k)
	chunk := qcolBudget / (k * cols)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > capacity {
		chunk = capacity
	}
	q.chunk = chunk
	q.xq = make([]uint8, c.InC*q.h*q.w)
	q.colU8 = make([]uint8, chunk*cols*k)
	q.acc = make([]int32, c.OutC*chunk*cols)
	return q
}

func newQDense(d *Dense, capacity int, actScale float32) *qkernel {
	q := &qkernel{dense: d, actScale: actScale}
	q.wscale = quant.ScaleForChannels(d.Weight.W.Data, d.In)
	q.wq = make([]int8, d.Out*d.In)
	quant.QuantizeChannelsInto(q.wq, d.Weight.W.Data, q.wscale, d.In)
	q.rowSum = rowSums(q.wq, d.In)
	q.xq = make([]uint8, capacity*d.In)
	q.acc = make([]int32, d.Out*capacity)
	return q
}

// scale returns the activation scale for this batch: frozen if calibrated,
// otherwise the batch's own max-magnitude grid.
func (q *qkernel) scale(x []float32) float32 {
	if q.actScale != 0 {
		return q.actScale
	}
	return quant.ScaleFor(x)
}

func (q *qkernel) forwardConv(y, x *tensor.Tensor) {
	c := q.conv
	n := x.Shape[0]
	k := c.InC * c.KH * c.KW
	cols := q.oh * q.ow
	sA := q.scale(x.Data[:n*c.InC*q.h*q.w])
	inStride := c.InC * q.h * q.w
	outStride := c.OutC * cols
	for s0 := 0; s0 < n; s0 += q.chunk {
		m := q.chunk
		if m > n-s0 {
			m = n - s0
		}
		mcols := m * cols
		for i := 0; i < m; i++ {
			quant.QuantizeU8Into(q.xq, x.Data[(s0+i)*inStride:(s0+i+1)*inStride], sA)
			tensor.Im2colU8(q.xq, c.InC, q.h, q.w, c.KH, c.KW, c.Stride, c.Pad, 128, q.colU8[i*cols*k:(i*cols+cols)*k])
		}
		acc := q.acc[:c.OutC*mcols]
		tensor.GemmS8(c.OutC, mcols, k, q.wq, q.colU8[:mcols*k], acc)
		for i := 0; i < m; i++ {
			dst := y.Data[(s0+i)*outStride : (s0+i+1)*outStride]
			for f := 0; f < c.OutC; f++ {
				sc := sA * q.wscale[f]
				corr := 128 * q.rowSum[f]
				var b float32
				if !c.noBias {
					b = c.Bias.W.Data[f]
				}
				src := acc[f*mcols+i*cols : f*mcols+(i+1)*cols]
				d := dst[f*cols : (f+1)*cols]
				for j := range src {
					d[j] = sc*float32(src[j]-corr) + b
				}
			}
		}
	}
}

func (q *qkernel) forwardDense(y, x *tensor.Tensor) {
	d := q.dense
	n := x.Shape[0]
	sA := q.scale(x.Data[:n*d.In])
	xq := q.xq[:n*d.In]
	quant.QuantizeU8Into(xq, x.Data[:n*d.In], sA)
	acc := q.acc[:d.Out*n]
	tensor.GemmS8(d.Out, n, d.In, q.wq, xq, acc)
	for o := 0; o < d.Out; o++ {
		sc := sA * q.wscale[o]
		corr := 128 * q.rowSum[o]
		b := d.Bias.W.Data[o]
		arow := acc[o*n : (o+1)*n]
		for s := 0; s < n; s++ {
			y.Data[s*d.Out+o] = sc*float32(arow[s]-corr) + b
		}
	}
}

// Capacity returns the largest batch the plan can run.
func (p *QuantPlan) Capacity() int { return p.capacity }

// OutShape returns the per-sample output shape.
func (p *QuantPlan) OutShape() []int {
	if len(p.steps) == 0 {
		return append([]int(nil), p.net.InShape...)
	}
	return append([]int(nil), p.steps[len(p.steps)-1].outShape...)
}

// Forward runs the int8 datapath over x ([N, InShape...], N ≤ capacity)
// and returns the plan-owned fp32 output, valid until the next call. Warm
// calls allocate nothing.
func (p *QuantPlan) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != len(p.net.InShape)+1 {
		panic(fmt.Sprintf("nn: quant plan Forward rank %d input, want batch + %v", x.Rank(), p.net.InShape))
	}
	n := x.Shape[0]
	if n < 1 || n > p.capacity {
		panic(fmt.Sprintf("nn: quant plan Forward batch %d outside [1,%d]", n, p.capacity))
	}
	cur := x
	for i := range p.steps {
		s := &p.steps[i]
		y := view(s.y, s.ySlab, n, s.outPer)
		switch {
		case s.q != nil && s.q.conv != nil:
			s.q.forwardConv(y, cur)
		case s.q != nil && s.q.dense != nil:
			s.q.forwardDense(y, cur)
		default:
			s.layer.ForwardInto(&s.st, y, cur, false)
		}
		cur = y
	}
	return cur
}

// Release returns the fp32 slabs to the arena; integer buffers are
// plan-private and simply dropped. The plan must not be used afterwards.
func (p *QuantPlan) Release() {
	for i := range p.steps {
		s := &p.steps[i]
		if s.ySlab != nil {
			p.arena.Put(s.ySlab)
			s.ySlab, s.y = nil, nil
		}
		p.arena.Reclaim(s.st.Col)
		p.arena.Reclaim(s.st.Dcol)
		p.arena.Reclaim(s.st.Eval)
		s.st = PlanState{}
		s.q = nil
	}
}

// QuantPlanCache mirrors PlanCache for the int8 datapath: plans bucket to
// the next power-of-two batch over one shared arena. Single-goroutine.
type QuantPlanCache struct {
	net   *Network
	calib []float32
	arena *tensor.Arena
	plans map[int]*QuantPlan
}

// NewQuantPlanCache builds an empty cache; calib as in CompileQuantized.
func NewQuantPlanCache(net *Network, calib []float32, arena *tensor.Arena) *QuantPlanCache {
	if arena == nil {
		arena = tensor.NewArena()
	}
	return &QuantPlanCache{net: net, calib: calib, arena: arena, plans: make(map[int]*QuantPlan)}
}

// Plan returns the compiled plan for the batch's bucket, compiling on
// first use.
func (pc *QuantPlanCache) Plan(batch int) *QuantPlan {
	if batch < 1 {
		panic("nn: quant plan cache batch must be positive")
	}
	b := batchBucket(batch)
	if p, ok := pc.plans[b]; ok {
		return p
	}
	p := CompileQuantized(pc.net, b, pc.calib, pc.arena)
	pc.plans[b] = p
	return p
}

// Forward routes x through the plan for its batch size.
func (pc *QuantPlanCache) Forward(x *tensor.Tensor) *tensor.Tensor {
	return pc.Plan(x.Shape[0]).Forward(x)
}

// Release releases every cached plan and empties the cache.
func (pc *QuantPlanCache) Release() {
	for b, p := range pc.plans {
		p.Release()
		delete(pc.plans, b)
	}
}

// WeightScales returns the per-output-channel int8 scales for every
// quantizable parameter tensor in net, keyed by parameter name — the
// serving registry stores these alongside the checkpoint weights so the
// int8 datapath's grid is inspectable without recompiling a plan.
func WeightScales(net *Network) map[string][]float32 {
	out := make(map[string][]float32)
	for _, l := range net.Layers {
		switch ll := l.(type) {
		case *Conv2D:
			out[ll.Weight.Name] = quant.ScaleForChannels(ll.Weight.W.Data, ll.InC*ll.KH*ll.KW)
		case *Dense:
			out[ll.Weight.Name] = quant.ScaleForChannels(ll.Weight.W.Data, ll.In)
		}
	}
	return out
}
