package nn

import (
	"fmt"
	"math"

	"deep15pf/internal/tensor"
)

// MaxPool2D is max pooling with a square kernel. The paper's HEP network
// uses 2×2 kernels with stride 2 after the first four convolutions.
type MaxPool2D struct {
	LayerName string
	K, Stride int
	argmax    []int32
	inShape   []int
}

// NewMaxPool2D constructs a max-pooling layer.
func NewMaxPool2D(name string, k, stride int) *MaxPool2D {
	return &MaxPool2D{LayerName: name, K: k, Stride: stride}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.LayerName }

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects [C,H,W], got %v", p.LayerName, in))
	}
	return []int{in[0], tensor.ConvOut(in[1], p.K, p.Stride, 0), tensor.ConvOut(in[2], p.K, p.Stride, 0)}
}

// Forward implements Layer. Eval-mode passes skip the argmax bookkeeping
// Backward routes gradients through.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOut(h, p.K, p.Stride, 0)
	ow := tensor.ConvOut(w, p.K, p.Stride, 0)
	out := tensor.New(n, c, oh, ow)
	if !train {
		p.forwardEval(x, out, n, c, h, w, oh, ow)
		return out
	}
	if cap(p.argmax) < out.Len() {
		p.argmax = make([]int32, out.Len())
	}
	p.argmax = p.argmax[:out.Len()]
	p.inShape = []int{n, c, h, w}
	planes := n * c
	tensor.ParallelFor(planes, func(lo, hi int) {
		for pl := lo; pl < hi; pl++ {
			src := x.Data[pl*h*w : (pl+1)*h*w]
			dst := out.Data[pl*oh*ow : (pl+1)*oh*ow]
			amx := p.argmax[pl*oh*ow : (pl+1)*oh*ow]
			di := 0
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := int32(0)
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						if iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride + kx
							if ix >= w {
								continue
							}
							v := src[iy*w+ix]
							if v > best {
								best = v
								bestIdx = int32(iy*w + ix)
							}
						}
					}
					dst[di] = best
					amx[di] = bestIdx
					di++
				}
			}
		}
	})
	return out
}

// forwardEval is max pooling without argmax recording: the winning value is
// identical (same comparison order), only the backward bookkeeping is
// dropped. Backward panics until the next train-mode Forward.
func (p *MaxPool2D) forwardEval(x, out *tensor.Tensor, n, c, h, w, oh, ow int) {
	p.inShape = nil
	p.argmax = p.argmax[:0]
	planes := n * c
	tensor.ParallelFor(planes, func(lo, hi int) {
		for pl := lo; pl < hi; pl++ {
			src := x.Data[pl*h*w : (pl+1)*h*w]
			dst := out.Data[pl*oh*ow : (pl+1)*oh*ow]
			di := 0
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						if iy >= h {
							continue
						}
						row := src[iy*w : iy*w+w]
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride + kx
							if ix >= w {
								continue
							}
							if v := row[ix]; v > best {
								best = v
							}
						}
					}
					dst[di] = best
					di++
				}
			}
		}
	})
}

// Backward implements Layer: routes gradients to the argmax positions.
func (p *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if p.inShape == nil {
		panic("nn: " + p.LayerName + " Backward before Forward")
	}
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	oh, ow := dout.Shape[2], dout.Shape[3]
	dx := tensor.New(n, c, h, w)
	planes := n * c
	for pl := 0; pl < planes; pl++ {
		dsrc := dout.Data[pl*oh*ow : (pl+1)*oh*ow]
		ddst := dx.Data[pl*h*w : (pl+1)*h*w]
		amx := p.argmax[pl*oh*ow : (pl+1)*oh*ow]
		for i, g := range dsrc {
			ddst[amx[i]] += g
		}
	}
	return dx
}

// FLOPs implements Layer. Pooling does comparisons, not flops; we count one
// op per input tap like SDE counts masked max instructions.
func (p *MaxPool2D) FLOPs(in []int) FlopCount {
	out := p.OutShape(in)
	ops := int64(out[0]*out[1]*out[2]) * int64(p.K*p.K)
	return FlopCount{Fwd: ops, Bwd: ops / 2, FwdExecuted: ops, BwdExecuted: ops / 2}
}

// GlobalAvgPool averages each channel plane to a single value, producing a
// [N, C] activation. The paper's HEP network uses it after the fifth
// convolution specifically to avoid large dense layers that would be
// expensive to synchronise (§I contribution list).
type GlobalAvgPool struct {
	LayerName string
	inShape   []int
}

// NewGlobalAvgPool constructs a global-average-pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{LayerName: name} }

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return p.LayerName }

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// OutShape implements Layer.
func (p *GlobalAvgPool) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects [C,H,W], got %v", p.LayerName, in))
	}
	return []int{in[0]}
}

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(n, c)
	inv := 1 / float32(h*w)
	for pl := 0; pl < n*c; pl++ {
		src := x.Data[pl*h*w : (pl+1)*h*w]
		var sum float32
		for _, v := range src {
			sum += v
		}
		out.Data[pl] = sum * inv
	}
	p.inShape = []int{n, c, h, w}
	return out
}

// Backward implements Layer: spreads each gradient uniformly over the plane.
func (p *GlobalAvgPool) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	dx := tensor.New(n, c, h, w)
	inv := 1 / float32(h*w)
	for pl := 0; pl < n*c; pl++ {
		g := dout.Data[pl] * inv
		dst := dx.Data[pl*h*w : (pl+1)*h*w]
		for i := range dst {
			dst[i] = g
		}
	}
	return dx
}

// FLOPs implements Layer.
func (p *GlobalAvgPool) FLOPs(in []int) FlopCount {
	ops := int64(in[0] * in[1] * in[2])
	return FlopCount{Fwd: ops, Bwd: ops, FwdExecuted: ops, BwdExecuted: ops}
}
