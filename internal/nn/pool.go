package nn

import (
	"fmt"
	"math"

	"deep15pf/internal/tensor"
)

// MaxPool2D is max pooling with a square kernel. The paper's HEP network
// uses 2×2 kernels with stride 2 after the first four convolutions.
type MaxPool2D struct {
	LayerName string
	K, Stride int
	state     PlanState // legacy-path state (direct Forward/Backward)
}

// NewMaxPool2D constructs a max-pooling layer.
func NewMaxPool2D(name string, k, stride int) *MaxPool2D {
	return &MaxPool2D{LayerName: name, K: k, Stride: stride}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.LayerName }

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects [C,H,W], got %v", p.LayerName, in))
	}
	return []int{in[0], tensor.ConvOut(in[1], p.K, p.Stride, 0), tensor.ConvOut(in[2], p.K, p.Stride, 0)}
}

// Reserve implements PlannedLayer.
func (p *MaxPool2D) Reserve(st *PlanState, a *tensor.Arena, n int, in []int, train bool) {
	if train {
		out := p.OutShape(in)
		if need := n * out[0] * out[1] * out[2]; cap(st.Argmax) < need {
			st.Argmax = make([]int32, need)
		}
	}
}

// Forward implements Layer. Eval-mode passes skip the argmax bookkeeping
// Backward routes gradients through.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape[0], x.Shape[1],
		tensor.ConvOut(x.Shape[2], p.K, p.Stride, 0),
		tensor.ConvOut(x.Shape[3], p.K, p.Stride, 0))
	p.ForwardInto(&p.state, out, x, train)
	return out
}

// ForwardInto implements PlannedLayer.
func (p *MaxPool2D) ForwardInto(st *PlanState, y, x *tensor.Tensor, train bool) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOut(h, p.K, p.Stride, 0)
	ow := tensor.ConvOut(w, p.K, p.Stride, 0)
	if !train {
		p.forwardEval(st, y, x, n, c, h, w, oh, ow)
		return
	}
	if cap(st.Argmax) < y.Len() {
		st.Argmax = make([]int32, y.Len())
	}
	st.Argmax = st.Argmax[:y.Len()]
	st.InShape = append(st.InShape[:0], n, c, h, w)
	planes := n * c
	if tensor.SerialFor(planes) {
		p.trainPlanes(0, planes, x.Data, y.Data, st.Argmax, h, w, oh, ow)
		return
	}
	xd, yd, amx := x.Data, y.Data, st.Argmax
	tensor.ParallelFor(planes, func(lo, hi int) {
		p.trainPlanes(lo, hi, xd, yd, amx, h, w, oh, ow)
	})
}

// trainPlanes pools planes [lo,hi) recording argmax winners.
func (p *MaxPool2D) trainPlanes(lo, hi int, xd, yd []float32, argmax []int32, h, w, oh, ow int) {
	for pl := lo; pl < hi; pl++ {
		src := xd[pl*h*w : (pl+1)*h*w]
		dst := yd[pl*oh*ow : (pl+1)*oh*ow]
		amx := argmax[pl*oh*ow : (pl+1)*oh*ow]
		di := 0
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(math.Inf(-1))
				bestIdx := int32(0)
				for ky := 0; ky < p.K; ky++ {
					iy := oy*p.Stride + ky
					if iy >= h {
						continue
					}
					for kx := 0; kx < p.K; kx++ {
						ix := ox*p.Stride + kx
						if ix >= w {
							continue
						}
						v := src[iy*w+ix]
						if v > best {
							best = v
							bestIdx = int32(iy*w + ix)
						}
					}
				}
				dst[di] = best
				amx[di] = bestIdx
				di++
			}
		}
	}
}

// forwardEval is max pooling without argmax recording: the winning value is
// identical (same comparison order), only the backward bookkeeping is
// dropped. Backward panics until the next train-mode Forward.
func (p *MaxPool2D) forwardEval(st *PlanState, y, x *tensor.Tensor, n, c, h, w, oh, ow int) {
	st.InShape = st.InShape[:0]
	st.Argmax = st.Argmax[:0]
	planes := n * c
	if tensor.SerialFor(planes) {
		p.evalPlanes(0, planes, x.Data, y.Data, h, w, oh, ow)
		return
	}
	xd, yd := x.Data, y.Data
	tensor.ParallelFor(planes, func(lo, hi int) {
		p.evalPlanes(lo, hi, xd, yd, h, w, oh, ow)
	})
}

// evalPlanes pools planes [lo,hi) without argmax bookkeeping.
func (p *MaxPool2D) evalPlanes(lo, hi int, xd, yd []float32, h, w, oh, ow int) {
	for pl := lo; pl < hi; pl++ {
		src := xd[pl*h*w : (pl+1)*h*w]
		dst := yd[pl*oh*ow : (pl+1)*oh*ow]
		di := 0
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(math.Inf(-1))
				for ky := 0; ky < p.K; ky++ {
					iy := oy*p.Stride + ky
					if iy >= h {
						continue
					}
					row := src[iy*w : iy*w+w]
					for kx := 0; kx < p.K; kx++ {
						ix := ox*p.Stride + kx
						if ix >= w {
							continue
						}
						if v := row[ix]; v > best {
							best = v
						}
					}
				}
				dst[di] = best
				di++
			}
		}
	}
}

// Backward implements Layer: routes gradients to the argmax positions.
func (p *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if len(p.state.InShape) == 0 {
		panic("nn: " + p.LayerName + " Backward before Forward")
	}
	s := p.state.InShape
	dx := tensor.New(s[0], s[1], s[2], s[3])
	p.BackwardInto(&p.state, dx, dout)
	return dx
}

// BackwardInto implements PlannedLayer.
func (p *MaxPool2D) BackwardInto(st *PlanState, dx, dout *tensor.Tensor) {
	if len(st.InShape) == 0 {
		panic("nn: " + p.LayerName + " Backward before Forward")
	}
	n, c, h, w := st.InShape[0], st.InShape[1], st.InShape[2], st.InShape[3]
	oh, ow := dout.Shape[2], dout.Shape[3]
	clear(dx.Data)
	planes := n * c
	for pl := 0; pl < planes; pl++ {
		dsrc := dout.Data[pl*oh*ow : (pl+1)*oh*ow]
		ddst := dx.Data[pl*h*w : (pl+1)*h*w]
		amx := st.Argmax[pl*oh*ow : (pl+1)*oh*ow]
		for i, g := range dsrc {
			ddst[amx[i]] += g
		}
	}
}

// FLOPs implements Layer. Pooling does comparisons, not flops; we count one
// op per input tap like SDE counts masked max instructions.
func (p *MaxPool2D) FLOPs(in []int) FlopCount {
	out := p.OutShape(in)
	ops := int64(out[0]*out[1]*out[2]) * int64(p.K*p.K)
	return FlopCount{Fwd: ops, Bwd: ops / 2, FwdExecuted: ops, BwdExecuted: ops / 2}
}

// GlobalAvgPool averages each channel plane to a single value, producing a
// [N, C] activation. The paper's HEP network uses it after the fifth
// convolution specifically to avoid large dense layers that would be
// expensive to synchronise (§I contribution list).
type GlobalAvgPool struct {
	LayerName string
	state     PlanState // legacy-path state (direct Forward/Backward)
}

// NewGlobalAvgPool constructs a global-average-pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{LayerName: name} }

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return p.LayerName }

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// OutShape implements Layer.
func (p *GlobalAvgPool) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects [C,H,W], got %v", p.LayerName, in))
	}
	return []int{in[0]}
}

// Reserve implements PlannedLayer.
func (p *GlobalAvgPool) Reserve(st *PlanState, a *tensor.Arena, n int, in []int, train bool) {}

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape[0], x.Shape[1])
	p.ForwardInto(&p.state, out, x, train)
	return out
}

// ForwardInto implements PlannedLayer.
func (p *GlobalAvgPool) ForwardInto(st *PlanState, y, x *tensor.Tensor, train bool) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	inv := 1 / float32(h*w)
	for pl := 0; pl < n*c; pl++ {
		src := x.Data[pl*h*w : (pl+1)*h*w]
		var sum float32
		for _, v := range src {
			sum += v
		}
		y.Data[pl] = sum * inv
	}
	st.InShape = append(st.InShape[:0], n, c, h, w)
}

// Backward implements Layer: spreads each gradient uniformly over the plane.
func (p *GlobalAvgPool) Backward(dout *tensor.Tensor) *tensor.Tensor {
	s := p.state.InShape
	dx := tensor.New(s[0], s[1], s[2], s[3])
	p.BackwardInto(&p.state, dx, dout)
	return dx
}

// BackwardInto implements PlannedLayer.
func (p *GlobalAvgPool) BackwardInto(st *PlanState, dx, dout *tensor.Tensor) {
	n, c, h, w := st.InShape[0], st.InShape[1], st.InShape[2], st.InShape[3]
	inv := 1 / float32(h*w)
	for pl := 0; pl < n*c; pl++ {
		g := dout.Data[pl] * inv
		dst := dx.Data[pl*h*w : (pl+1)*h*w]
		for i := range dst {
			dst[i] = g
		}
	}
}

// FLOPs implements Layer.
func (p *GlobalAvgPool) FLOPs(in []int) FlopCount {
	ops := int64(in[0] * in[1] * in[2])
	return FlopCount{Fwd: ops, Bwd: ops, FwdExecuted: ops, BwdExecuted: ops}
}
