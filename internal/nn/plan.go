package nn

import (
	"fmt"

	"deep15pf/internal/tensor"
)

// Plan is a compiled execution schedule for a Network at a fixed maximum
// batch size: every activation, every piece of kernel scratch and — for
// training plans — every input-gradient buffer is allocated from an arena
// once, at compile time. Steady-state Forward (and Backward) then run with
// zero allocation, producing bitwise-identical results to the unplanned
// Network.Forward/Backward path: the layers execute the very same
// destination-passing kernels, only the destination ownership changes.
//
// This is the repository's version of the execution-plan/memory-plan stage
// every production framework runs before its hot loop (the paper's
// Intel-Caffe stack gets it from Caffe's preallocated blobs): serving
// replicas and training replicas both pay shape-dependent setup once and
// then never touch the allocator, which removes GC pressure from the two
// paths the ROADMAP cares about most.
//
// A Plan is single-goroutine, like the replica that owns it. Tensors
// returned by Forward/Backward are plan-owned views, valid only until the
// next call; callers that need to retain results must copy.
type Plan struct {
	net      *Network
	capacity int
	train    bool
	arena    *tensor.Arena
	steps    []planStep
	cut      int      // first step the backward pass reaches (0 unless frozen)
	params   []*Param // cached trainable params: Backward re-checks gradient presence
	n        int      // batch size of the most recent Forward
}

type planStep struct {
	layer    PlannedLayer
	st       PlanState
	train    bool  // run the training datapath (false for the frozen prefix)
	trainIdx int   // index into TrainableLayers order, -1 if parameter-free or frozen
	inShape  []int // per-sample
	outShape []int // per-sample
	inPer    int   // per-sample input elements
	outPer   int   // per-sample output elements
	ySlab    []float32
	y        *tensor.Tensor // batch view over ySlab
	dxSlab   []float32      // training plans only, steps at/after the cut
	dx       *tensor.Tensor
}

// Compile builds a plan for batches of up to capacity samples. A training
// plan (train=true) additionally preallocates input-gradient buffers and
// retains per-layer backward state; compiling one over a network whose
// gradient accumulators were released panics — release gradients only on
// inference replicas (see Network.ReleaseGradients). arena == nil gives the
// plan a private arena; passing a shared arena lets several plans (e.g. a
// serving replica's per-batch-size cache) recycle each other's slabs.
//
// Networks with a frozen prefix (Network.Freeze) compile the prefix steps
// on the inference datapath even in a training plan: no input-gradient
// slabs, no retained backward state, no mask/argmax buffers. The eval
// forward performs the identical floating-point operations in the same
// order as the train forward (see Conv2D.forwardEval), so the trajectory is
// bitwise-unchanged — the frozen prefix just stops paying training memory
// and backward compute.
func Compile(net *Network, capacity int, train bool, arena *tensor.Arena) *Plan {
	if capacity < 1 {
		panic("nn: plan capacity must be positive")
	}
	if arena == nil {
		arena = tensor.NewArena()
	}
	p := &Plan{net: net, capacity: capacity, train: train, arena: arena, params: net.TrainableParams()}
	if train {
		p.cut = net.backwardCut() // panics on a fully frozen network
		for _, prm := range p.params {
			if prm.Grad == nil {
				panic(fmt.Sprintf("nn: training plan for %s: parameter %s has released gradients (ReleaseGradients); compile an inference plan instead", net.NetName, prm.Name))
			}
		}
	}
	in := net.InShape
	p.steps = make([]planStep, len(net.Layers))
	trainables := 0
	for i, l := range net.Layers {
		pl, ok := l.(PlannedLayer)
		if !ok {
			panic(fmt.Sprintf("nn: layer %s (%T) does not implement PlannedLayer; cannot compile a plan", l.Name(), l))
		}
		out := l.OutShape(in)
		s := &p.steps[i]
		s.layer = pl
		s.train = train && i >= p.cut
		s.trainIdx = -1
		if len(l.Params()) > 0 && !net.frozen[l] {
			s.trainIdx = trainables
			trainables++
		}
		s.inShape = append([]int(nil), in...)
		s.outShape = append([]int(nil), out...)
		s.inPer = shapeElems(in)
		s.outPer = shapeElems(out)
		s.ySlab = arena.Get(capacity * s.outPer)
		s.y = tensor.FromSlice(s.ySlab, append([]int{capacity}, out...)...)
		if s.train {
			s.dxSlab = arena.Get(capacity * s.inPer)
			s.dx = tensor.FromSlice(s.dxSlab, append([]int{capacity}, in...)...)
		}
		pl.Reserve(&s.st, arena, capacity, s.inShape, s.train)
		in = out
	}
	return p
}

// Capacity returns the largest batch the plan can run.
func (p *Plan) Capacity() int { return p.capacity }

// Training reports whether the plan retains backward state.
func (p *Plan) Training() bool { return p.train }

// OutShape returns the per-sample output shape.
func (p *Plan) OutShape() []int {
	if len(p.steps) == 0 {
		return append([]int(nil), p.net.InShape...)
	}
	return append([]int(nil), p.steps[len(p.steps)-1].outShape...)
}

// view repoints t at the first n samples of its slab. The in-place resize
// is what keeps variable batch sizes allocation-free.
func view(t *tensor.Tensor, slab []float32, n, per int) *tensor.Tensor {
	t.Shape[0] = n
	t.Data = slab[:n*per]
	return t
}

// Forward runs the network over x ([N, InShape...], N ≤ capacity) and
// returns the plan-owned output, valid until the next Forward. A training
// plan runs train-mode layers (retaining backward state and x itself until
// the next call); an inference plan runs the eval datapath and retains
// nothing.
func (p *Plan) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != len(p.net.InShape)+1 {
		panic(fmt.Sprintf("nn: plan Forward rank %d input, want batch + %v", x.Rank(), p.net.InShape))
	}
	n := x.Shape[0]
	if n < 1 || n > p.capacity {
		panic(fmt.Sprintf("nn: plan Forward batch %d outside [1,%d]", n, p.capacity))
	}
	for i, d := range p.net.InShape {
		if x.Shape[i+1] != d {
			panic(fmt.Sprintf("nn: plan Forward per-sample shape %v, want %v", x.Shape[1:], p.net.InShape))
		}
	}
	p.n = n
	cur := x
	for i := range p.steps {
		s := &p.steps[i]
		y := view(s.y, s.ySlab, n, s.outPer)
		s.layer.ForwardInto(&s.st, y, cur, s.train)
		cur = y
	}
	return cur
}

// Backward propagates dout ([N, OutShape...] matching the last Forward)
// through a training plan, accumulating parameter gradients, and returns
// the plan-owned gradient with respect to the network input (valid until
// the next Backward).
func (p *Plan) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return p.BackwardStream(dout, nil)
}

// BackwardStream is Backward with per-layer completion notification: after
// the t-th trainable layer's BackwardInto returns — the moment its
// accumulated parameter gradients are final, since no other layer touches
// them — gradDone(t) fires on the calling goroutine. Layers complete in
// reverse topological order, so t runs from the deepest trainable layer
// down to 0. This is the hook the overlapped trainer uses to start
// exchanging layer t's gradients while the rest of the backward pass is
// still executing (the paper's §III-E pipelining). gradDone == nil degrades
// to plain Backward. Over a network with a frozen prefix the pass stops at
// the first trainable layer and returns the gradient at that boundary.
func (p *Plan) BackwardStream(dout *tensor.Tensor, gradDone func(layer int)) *tensor.Tensor {
	if !p.train {
		panic("nn: Backward on an inference plan")
	}
	if p.n == 0 {
		panic("nn: plan Backward before Forward")
	}
	for _, prm := range p.params {
		if prm.Grad == nil {
			panic(fmt.Sprintf("nn: plan Backward: parameter %s gradients were released mid-training", prm.Name))
		}
	}
	last := &p.steps[len(p.steps)-1]
	if dout.Len() != p.n*last.outPer {
		panic(fmt.Sprintf("nn: plan Backward gradient size %d, want %d", dout.Len(), p.n*last.outPer))
	}
	cur := dout
	for i := len(p.steps) - 1; i >= p.cut; i-- {
		s := &p.steps[i]
		dx := view(s.dx, s.dxSlab, p.n, s.inPer)
		s.layer.BackwardInto(&s.st, dx, cur)
		cur = dx
		if gradDone != nil && s.trainIdx >= 0 {
			gradDone(s.trainIdx)
		}
	}
	return cur
}

// Release returns the plan's activation, gradient and scratch slabs to its
// arena. The plan must not be used afterwards; a plan cache calls this when
// a bucket is evicted so a successor plan can reuse the memory.
func (p *Plan) Release() {
	for i := range p.steps {
		s := &p.steps[i]
		if s.ySlab != nil {
			p.arena.Put(s.ySlab)
			s.ySlab, s.y = nil, nil
		}
		if s.dxSlab != nil {
			p.arena.Put(s.dxSlab)
			s.dxSlab, s.dx = nil, nil
		}
		p.arena.Reclaim(s.st.Col)
		p.arena.Reclaim(s.st.Dcol)
		p.arena.Reclaim(s.st.Eval)
		s.st = PlanState{}
	}
	p.n = 0
}

// batchBucket rounds a batch size up to the plan-cache bucket: the next
// power of two. Serving batch sizes vary request by request; bucketing
// bounds a replica's cache at log2(maxBatch) plans while every plan still
// executes the exact batch it is handed (capacity is a ceiling, not a pad —
// no wasted compute).
func batchBucket(n int) int {
	b := 1
	for b < n {
		b <<= 1
	}
	return b
}

// PlanCache lazily compiles and reuses plans over one shared arena. It is
// the shape adapters sit on, with a keying policy per side of the
// train/serve divide: inference caches bucket batch sizes to the next
// power of two (the batcher produces variable sizes; log2(maxBatch) plans
// cover them all), while training caches compile at the exact batch size —
// shard sizes are stable for a whole run (see core.Replica), so bucketing
// would only pad every activation and gradient slab by up to 2x for
// nothing. Like Plan, a cache is single-goroutine.
type PlanCache struct {
	net   *Network
	train bool
	arena *tensor.Arena
	plans map[int]*Plan
}

// NewPlanCache builds an empty cache. arena == nil creates a private one.
func NewPlanCache(net *Network, train bool, arena *tensor.Arena) *PlanCache {
	if arena == nil {
		arena = tensor.NewArena()
	}
	return &PlanCache{net: net, train: train, arena: arena, plans: make(map[int]*Plan)}
}

// Plan returns the compiled plan covering batch (exact capacity for
// training caches, power-of-two bucket for inference), compiling it on
// first use.
func (pc *PlanCache) Plan(batch int) *Plan {
	if batch < 1 {
		panic("nn: plan cache batch must be positive")
	}
	b := batch
	if !pc.train {
		b = batchBucket(batch)
	}
	if p, ok := pc.plans[b]; ok {
		return p
	}
	p := Compile(pc.net, b, pc.train, pc.arena)
	pc.plans[b] = p
	return p
}

// Forward routes x through the plan for its batch size.
func (pc *PlanCache) Forward(x *tensor.Tensor) *tensor.Tensor {
	return pc.Plan(x.Shape[0]).Forward(x)
}

// Arena exposes the cache's arena so sibling plans (e.g. a model's head
// layers) can share slabs.
func (pc *PlanCache) Arena() *tensor.Arena { return pc.arena }

// Release releases every cached plan and empties the cache.
func (pc *PlanCache) Release() {
	for b, p := range pc.plans {
		p.Release()
		delete(pc.plans, b)
	}
}

// Len returns the number of compiled plans (one per batch-size bucket).
func (pc *PlanCache) Len() int { return len(pc.plans) }
