package nn

import (
	"fmt"
	"strings"
	"time"

	"deep15pf/internal/tensor"
)

// Network is a sequential stack of layers with a fixed per-sample input
// shape. It provides the accounting surface the rest of the system builds
// on: parameter enumeration for solvers and parameter servers, per-layer
// FLOP counts for the performance model, and timed passes for the Fig 5
// single-node breakdown.
type Network struct {
	NetName string
	InShape []int // per-sample, e.g. [3,224,224]
	Layers  []Layer

	// frozen marks layers excluded from training (see Freeze). Frozen
	// layers keep their weights but own no gradient accumulators, are
	// excluded from TrainableLayers, and are skipped entirely by the
	// backward pass.
	frozen map[Layer]bool
}

// NewNetwork creates an empty network for the given per-sample input shape.
func NewNetwork(name string, inShape ...int) *Network {
	return &Network{NetName: name, InShape: append([]int(nil), inShape...)}
}

// Add appends layers, validating shape compatibility eagerly so
// configuration errors surface at construction, not mid-training.
func (n *Network) Add(layers ...Layer) *Network {
	for _, l := range layers {
		shape := n.OutShape()
		l.OutShape(shape) // panics on incompatibility
		n.Layers = append(n.Layers, l)
	}
	return n
}

// OutShape returns the per-sample output shape of the current stack.
func (n *Network) OutShape() []int {
	shape := n.InShape
	for _, l := range n.Layers {
		shape = l.OutShape(shape)
	}
	return shape
}

// Forward runs all layers.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Infer is the inference-only forward entry point: every layer runs with
// train=false and nothing in the pass touches gradient accumulators, so it
// works on networks whose gradients have been released with
// ReleaseGradients. Layers still cache forward state in their private
// buffers, which is why serving replicas are minted per worker rather than
// shared across goroutines.
func (n *Network) Infer(x *tensor.Tensor) *tensor.Tensor {
	return n.Forward(x, false)
}

// ReleaseGradients frees every parameter's gradient accumulator, halving an
// inference replica's parameter memory. The network can no longer be
// trained: Backward will panic, while ZeroGrad and ScaleGrad become no-ops
// for released parameters.
//
// Interaction with compiled plans: an inference plan (Compile with
// train=false) holds no gradient or backward buffers, so it compiles and
// runs on a released network — this is the serving configuration. Compiling
// a *training* plan over a released network panics at Compile time, and a
// training plan whose network is released mid-flight panics at the next
// Backward with the offending parameter's name, rather than dereferencing
// a nil gradient deep inside a kernel.
func (n *Network) ReleaseGradients() {
	ReleaseGradients(n.Params())
}

// ReleaseGradients drops the gradient accumulators of a parameter set. It
// is the package-level form used by model containers that are not a single
// Network (e.g. the climate encoder/heads/decoder assembly).
func ReleaseGradients(params []*Param) {
	for _, p := range params {
		p.Grad = nil
	}
}

// Freeze marks the named layers as frozen: their weights stay live for the
// forward pass but they drop their gradient accumulators, leave
// TrainableLayers, and the backward pass stops before reaching them. This
// is the transfer-learning configuration — load a donor checkpoint into the
// early convolutional backbone, freeze it, and train only the new head; a
// frozen layer therefore also exchanges zero gradient bytes with the
// parameter servers, since the exchange tiers pair state with
// TrainableLayers.
//
// Constraint: the frozen parameterised layers must form a prefix of the
// parameterised layers (every frozen layer precedes every trainable one).
// The sequential backward pass stops at the first trainable layer, so a
// frozen layer sandwiched between trainable ones would silently corrupt
// upstream gradients; Freeze panics rather than allow it. Parameter-free
// layers (activations, pooling) may be named anywhere — freezing them is a
// no-op beyond documentation. Unknown names panic.
func (n *Network) Freeze(names ...string) {
	if len(names) == 0 {
		return
	}
	want := make(map[string]bool, len(names))
	for _, nm := range names {
		want[nm] = true
	}
	if n.frozen == nil {
		n.frozen = make(map[Layer]bool, len(names))
	}
	for _, l := range n.Layers {
		if want[l.Name()] {
			n.frozen[l] = true
			delete(want, l.Name())
		}
	}
	if len(want) > 0 {
		for nm := range want {
			panic(fmt.Sprintf("nn: Freeze: network %q has no layer %q", n.NetName, nm))
		}
	}
	seenTrainable := false
	for _, l := range n.Layers {
		if len(l.Params()) == 0 {
			continue
		}
		if n.frozen[l] {
			if seenTrainable {
				panic(fmt.Sprintf("nn: Freeze: frozen layer %q follows a trainable layer; frozen layers must form a prefix", l.Name()))
			}
			ReleaseGradients(l.Params())
		} else {
			seenTrainable = true
		}
	}
}

// Frozen returns the names of frozen layers in layer order (empty when
// nothing is frozen).
func (n *Network) Frozen() []string {
	if len(n.frozen) == 0 {
		return nil
	}
	var names []string
	for _, l := range n.Layers {
		if n.frozen[l] {
			names = append(names, l.Name())
		}
	}
	return names
}

// backwardCut returns the index of the first layer the backward pass must
// reach: the earliest non-frozen parameterised layer. With nothing frozen
// it is 0 (the full legacy backward, including input gradients). A fully
// frozen network has no backward to run and panics — inference uses
// Forward/Infer.
func (n *Network) backwardCut() int {
	if len(n.frozen) == 0 {
		return 0
	}
	for i, l := range n.Layers {
		if len(l.Params()) > 0 && !n.frozen[l] {
			return i
		}
	}
	panic(fmt.Sprintf("nn: Backward on fully frozen network %q", n.NetName))
}

// Backward runs all layers in reverse, accumulating parameter gradients,
// and returns the gradient with respect to the network input.
func (n *Network) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return n.BackwardStream(dout, nil)
}

// BackwardStream is Backward with per-layer completion notification: after
// the t-th trainable layer (TrainableLayers order) finishes its backward —
// at which point its accumulated gradients are final — gradDone(t) fires on
// the calling goroutine, in reverse topological order. It is the unplanned
// counterpart of Plan.BackwardStream; gradDone == nil degrades to Backward.
//
// On a network with frozen layers (see Freeze) the pass stops at the first
// trainable parameterised layer and returns the gradient with respect to
// that layer's input — the frozen prefix never runs backward at all.
func (n *Network) BackwardStream(dout *tensor.Tensor, gradDone func(layer int)) *tensor.Tensor {
	cut := n.backwardCut()
	trainIdx := -1
	if gradDone != nil {
		for _, l := range n.Layers {
			if len(l.Params()) > 0 && !n.frozen[l] {
				trainIdx++
			}
		}
	}
	for i := len(n.Layers) - 1; i >= cut; i-- {
		l := n.Layers[i]
		dout = l.Backward(dout)
		if gradDone != nil && len(l.Params()) > 0 {
			gradDone(trainIdx)
			trainIdx--
		}
	}
	return dout
}

// LayerTiming records one layer's measured wall time for a pass.
type LayerTiming struct {
	Name     string
	Fwd, Bwd time.Duration
}

// ForwardTimed is Forward with per-layer wall-clock measurement.
func (n *Network) ForwardTimed(x *tensor.Tensor, train bool) (*tensor.Tensor, []LayerTiming) {
	timings := make([]LayerTiming, len(n.Layers))
	for i, l := range n.Layers {
		t0 := time.Now()
		x = l.Forward(x, train)
		timings[i] = LayerTiming{Name: l.Name(), Fwd: time.Since(t0)}
	}
	return x, timings
}

// BackwardTimed is Backward with per-layer wall-clock measurement merged
// into timings (which must come from the matching ForwardTimed call).
func (n *Network) BackwardTimed(dout *tensor.Tensor, timings []LayerTiming) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= n.backwardCut(); i-- {
		t0 := time.Now()
		dout = n.Layers[i].Backward(dout)
		timings[i].Bwd = time.Since(t0)
	}
	return dout
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// TrainableLayers returns the non-frozen layers that own parameters, in
// order. The hybrid architecture dedicates one parameter server to each of
// these (paper §III-E: 6 for HEP, 14 for climate); because frozen layers
// (see Freeze) are excluded here, every consumer of this list — solvers,
// all-reduce, parameter servers, checkpoint staging — skips them without
// further plumbing.
func (n *Network) TrainableLayers() []Layer {
	var ls []Layer
	for _, l := range n.Layers {
		if len(l.Params()) > 0 && !n.frozen[l] {
			ls = append(ls, l)
		}
	}
	return ls
}

// TrainableParams returns the parameters of TrainableLayers in layer order
// — Params minus the frozen prefix. Training plans validate gradient
// presence against this set.
func (n *Network) TrainableParams() []*Param {
	if len(n.frozen) == 0 {
		return n.Params()
	}
	var ps []*Param
	for _, l := range n.TrainableLayers() {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient accumulator. Released gradients
// (see ReleaseGradients) are skipped.
func (n *Network) ZeroGrad() {
	ZeroGrads(n.Params())
}

// ZeroGrads clears a parameter set's gradient accumulators, skipping
// released ones. Replicas cache their parameter slice and call this form so
// per-iteration gradient zeroing performs no allocation (Network.ZeroGrad
// rebuilds the slice each call).
func ZeroGrads(params []*Param) {
	for _, p := range params {
		if p.Grad != nil {
			p.Grad.Zero()
		}
	}
}

// ScaleGrad multiplies every gradient by alpha (used to average
// sample-summed gradients into per-example means).
func (n *Network) ScaleGrad(alpha float32) {
	for _, p := range n.Params() {
		if p.Grad != nil {
			tensor.Scale(alpha, p.Grad.Data)
		}
	}
}

// NumParams returns the total trainable element count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.NumEl()
	}
	return total
}

// ParamBytes returns total parameter bytes — the model size exchanged with
// parameter servers (Table II's "Parameters size" column).
func (n *Network) ParamBytes() int64 {
	var total int64
	for _, p := range n.Params() {
		total += p.Bytes()
	}
	return total
}

// LayerFlop is one row of the per-layer FLOP breakdown.
type LayerFlop struct {
	Name  string
	Count FlopCount // per sample
	Bytes int64     // parameter bytes owned by the layer
}

// FLOPBreakdown returns per-layer per-sample flop counts in layer order.
func (n *Network) FLOPBreakdown() []LayerFlop {
	shape := n.InShape
	rows := make([]LayerFlop, 0, len(n.Layers))
	for _, l := range n.Layers {
		var bytes int64
		for _, p := range l.Params() {
			bytes += p.Bytes()
		}
		rows = append(rows, LayerFlop{Name: l.Name(), Count: l.FLOPs(shape), Bytes: bytes})
		shape = l.OutShape(shape)
	}
	return rows
}

// FLOPsPerSample returns total fwd+bwd flop counts for one sample.
func (n *Network) FLOPsPerSample() FlopCount {
	var total FlopCount
	for _, row := range n.FLOPBreakdown() {
		total = total.Add(row.Count)
	}
	return total
}

// CopyWeightsFrom copies parameter values (not gradients) from src, which
// must have an identical architecture. Used to fan a master model out to
// worker replicas and to install parameter-server responses.
func (n *Network) CopyWeightsFrom(src *Network) {
	dst := n.Params()
	sp := src.Params()
	if len(dst) != len(sp) {
		panic("nn: CopyWeightsFrom architecture mismatch")
	}
	for i := range dst {
		dst[i].W.CopyFrom(sp[i].W)
	}
}

// Summary renders a human-readable architecture table.
func (n *Network) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (input %v)\n", n.NetName, n.InShape)
	shape := n.InShape
	for _, l := range n.Layers {
		out := l.OutShape(shape)
		var params int
		for _, p := range l.Params() {
			params += p.NumEl()
		}
		fmt.Fprintf(&b, "  %-18s %v -> %v  params=%d\n", l.Name(), shape, out, params)
		shape = out
	}
	fmt.Fprintf(&b, "  total params %d (%.1f MiB)\n", n.NumParams(), float64(n.ParamBytes())/(1<<20))
	return b.String()
}
