package nn

import (
	"fmt"
	"math"

	"deep15pf/internal/tensor"
)

// SoftmaxCrossEntropy computes the paper's HEP loss: softmax over class
// logits followed by cross-entropy against integer labels. It returns the
// mean loss over the batch and the gradient with respect to the logits
// (softmax(x) − onehot(label), divided by batch size).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	grad := tensor.New(logits.Shape[0], logits.Shape[1])
	loss := SoftmaxCrossEntropyInto(logits, labels, grad)
	return loss, grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing the gradient into
// a caller-owned tensor of the logits' shape — the allocation-free form
// training plans use. Every gradient element is overwritten.
func SoftmaxCrossEntropyInto(logits *tensor.Tensor, labels []int, grad *tensor.Tensor) float64 {
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic("nn: SoftmaxCrossEntropy label count mismatch")
	}
	if grad.Len() != n*k {
		panic("nn: SoftmaxCrossEntropy gradient size mismatch")
	}
	var loss float64
	for s := 0; s < n; s++ {
		row := logits.Data[s*k : (s+1)*k]
		grow := grad.Data[s*k : (s+1)*k]
		// log-sum-exp with max subtraction for stability
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logZ := math.Log(sum) + float64(maxv)
		lab := labels[s]
		if lab < 0 || lab >= k {
			panic("nn: label out of range")
		}
		loss += logZ - float64(row[lab])
		invN := 1 / float32(n)
		for j := range grow {
			p := float32(math.Exp(float64(row[j]) - logZ))
			if j == lab {
				grow[j] = (p - 1) * invN
			} else {
				grow[j] = p * invN
			}
		}
	}
	return loss / float64(n)
}

// SoftmaxCrossEntropyWeightedInto is SoftmaxCrossEntropyInto with a
// per-sample weight on each row's contribution — the semi-supervised
// trainer's knob for discounting pseudo-labeled samples against human
// labels (Kingma et al.-style loops weight the generated labels below the
// curated ones). The mean is taken over the weight total, so a batch of
// all-1 weights matches the unweighted loss in value; weights == nil
// delegates to the unweighted path outright, bit for bit. A batch whose
// weights sum to zero contributes nothing (loss 0, zero gradient) rather
// than dividing by zero.
func SoftmaxCrossEntropyWeightedInto(logits *tensor.Tensor, labels []int, weights []float32, grad *tensor.Tensor) float64 {
	if weights == nil {
		return SoftmaxCrossEntropyInto(logits, labels, grad)
	}
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n || len(weights) != n {
		panic("nn: SoftmaxCrossEntropy label/weight count mismatch")
	}
	if grad.Len() != n*k {
		panic("nn: SoftmaxCrossEntropy gradient size mismatch")
	}
	var wsum float64
	for _, w := range weights {
		if w < 0 {
			panic("nn: negative sample weight")
		}
		wsum += float64(w)
	}
	if wsum == 0 {
		for i := range grad.Data[:n*k] {
			grad.Data[i] = 0
		}
		return 0
	}
	invW := float32(1 / wsum)
	var loss float64
	for s := 0; s < n; s++ {
		row := logits.Data[s*k : (s+1)*k]
		grow := grad.Data[s*k : (s+1)*k]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logZ := math.Log(sum) + float64(maxv)
		lab := labels[s]
		if lab < 0 || lab >= k {
			panic("nn: label out of range")
		}
		w := weights[s]
		loss += float64(w) * (logZ - float64(row[lab]))
		scale := w * invW
		for j := range grow {
			p := float32(math.Exp(float64(row[j]) - logZ))
			if j == lab {
				grow[j] = (p - 1) * scale
			} else {
				grow[j] = p * scale
			}
		}
	}
	return loss / wsum
}

// SoftmaxTop1 computes each row's argmax class and its softmax
// probability — the confidence extraction the pseudo-label factory
// thresholds on. Ties resolve to the lowest class index (strict >
// comparison), so an all-equal row yields class 0 at confidence 1/k,
// deterministically. Any non-finite logit (NaN or ±Inf) is rejected with
// an explicit error naming the sample and class: a scoring pass over
// millions of unlabeled samples must fail loudly at the poisoned row, not
// write a garbage label that silently enters the next training run.
//
// conf and label must each hold exactly one entry per row. The pass is
// allocation-free — it runs once per batch on the bulk scoring hot path.
func SoftmaxTop1(logits *tensor.Tensor, conf []float32, label []int32) error {
	if logits.Rank() != 2 {
		return fmt.Errorf("nn: SoftmaxTop1 wants [batch, classes] logits, got shape %v", logits.Shape)
	}
	n, k := logits.Shape[0], logits.Shape[1]
	if len(conf) != n || len(label) != n {
		return fmt.Errorf("nn: SoftmaxTop1 destinations hold %d/%d entries for a %d-row batch", len(conf), len(label), n)
	}
	for s := 0; s < n; s++ {
		row := logits.Data[s*k : (s+1)*k]
		best := 0
		maxv := row[0]
		for j, v := range row {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return fmt.Errorf("nn: SoftmaxTop1: non-finite logit %v at sample %d class %d", v, s, j)
			}
			if v > maxv {
				maxv, best = v, j
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		conf[s] = float32(1 / sum) // exp(max−max)/Σexp(v−max)
		label[s] = int32(best)
	}
	return nil
}

// SoftmaxProbs returns row-wise softmax probabilities, used at inference
// time for ROC scans.
func SoftmaxProbs(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Shape[0], logits.Shape[1]
	out := tensor.New(n, k)
	for s := 0; s < n; s++ {
		row := logits.Data[s*k : (s+1)*k]
		orow := out.Data[s*k : (s+1)*k]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			orow[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// Sigmoid returns 1/(1+exp(−x)) with clamping for stability.
func Sigmoid(x float32) float32 {
	if x < -30 {
		return 0
	}
	if x > 30 {
		return 1
	}
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// BCEWithLogits returns the binary cross-entropy of logit x against target
// t∈[0,1] and the gradient dLoss/dx = sigmoid(x) − t. The stable form
// max(x,0) − x·t + log(1+exp(−|x|)) is used.
func BCEWithLogits(x, t float32) (float64, float32) {
	ax := float64(x)
	loss := math.Max(ax, 0) - ax*float64(t) + math.Log1p(math.Exp(-math.Abs(ax)))
	return loss, Sigmoid(x) - t
}

// MSELoss returns mean((pred−target)²)/2 and the gradient (pred−target)/n.
// Used for the climate decoder's reconstruction objective.
func MSELoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	grad := tensor.New(pred.Shape...)
	return MSELossInto(pred, target, grad), grad
}

// MSELossInto is MSELoss writing the gradient into a caller-owned tensor —
// the allocation-free form training plans use. Every gradient element is
// overwritten.
func MSELossInto(pred, target, grad *tensor.Tensor) float64 {
	if pred.Len() != target.Len() {
		panic("nn: MSELoss size mismatch")
	}
	if grad.Len() != pred.Len() {
		panic("nn: MSELoss gradient size mismatch")
	}
	n := float64(pred.Len())
	var loss float64
	invN := float32(1 / n)
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += float64(d) * float64(d)
		grad.Data[i] = d * invN
	}
	return loss / (2 * n)
}

// SmoothL1 returns the Huber loss of residual r (δ=1) and its derivative.
// Used for bounding-box coordinate regression, as in the detection systems
// ([37]–[39]) the climate architecture adapts.
func SmoothL1(r float32) (float64, float32) {
	a := float64(r)
	if math.Abs(a) < 1 {
		return 0.5 * a * a, r
	}
	if a > 0 {
		return math.Abs(a) - 0.5, 1
	}
	return math.Abs(a) - 0.5, -1
}
