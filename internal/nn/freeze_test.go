package nn

import (
	"strings"
	"testing"

	"deep15pf/internal/tensor"
)

// freezeTestBackbone returns the layer names a transfer-learning run would
// freeze in planTestNet: the first conv block.
var freezeTestBackbone = []string{"c1", "r1", "p1"}

func TestFreezeFiltersTrainableLayers(t *testing.T) {
	net := planTestNet(7)
	net.Freeze(freezeTestBackbone...)

	if got := net.Frozen(); len(got) != 3 || got[0] != "c1" {
		t.Fatalf("Frozen() = %v, want [c1 r1 p1]", got)
	}
	tl := net.TrainableLayers()
	if len(tl) != 2 || tl[0].Name() != "c2" || tl[1].Name() != "fc" {
		names := make([]string, len(tl))
		for i, l := range tl {
			names[i] = l.Name()
		}
		t.Fatalf("TrainableLayers = %v, want [c2 fc]", names)
	}
	for _, p := range net.TrainableParams() {
		if strings.HasPrefix(p.Name, "c1.") {
			t.Fatalf("TrainableParams still holds frozen %s", p.Name)
		}
		if p.Grad == nil {
			t.Fatalf("trainable %s lost its gradient accumulator", p.Name)
		}
	}
	// Frozen params keep their weights but drop gradient accumulators.
	for _, p := range net.Params() {
		if strings.HasPrefix(p.Name, "c1.") && p.Grad != nil {
			t.Fatalf("frozen %s still owns a gradient accumulator", p.Name)
		}
	}
}

func TestFreezeUnknownNamePanics(t *testing.T) {
	net := planTestNet(7)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Freeze of an unknown layer must panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "no layer") {
			t.Fatalf("unhelpful panic: %v", r)
		}
	}()
	net.Freeze("nope")
}

func TestFreezeNonPrefixPanics(t *testing.T) {
	net := planTestNet(7)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("freezing a mid-stack layer under a trainable one must panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "prefix") {
			t.Fatalf("unhelpful panic: %v", r)
		}
	}()
	net.Freeze("c2") // c1 stays trainable before it
}

// TestFrozenForwardBitwiseIdentity is the trajectory gate: the frozen
// prefix of a training plan runs the eval datapath, which must produce
// bitwise-identical activations to the full train-mode forward — otherwise
// freezing would silently change the fine-tune trajectory.
func TestFrozenForwardBitwiseIdentity(t *testing.T) {
	ref := planTestNet(7)
	frozen := planTestNet(7)
	frozen.Freeze(freezeTestBackbone...)
	plan := Compile(frozen, 4, true, nil)

	rng := tensor.NewRNG(99)
	x := randBatch(rng, 4, ref.InShape)
	want := ref.Forward(x, true)
	requireBitwise(t, "frozen plan forward", plan.Forward(x), want)
}

// TestFrozenBackwardParity pins the backward contract from every angle:
// trainable gradients match the unfrozen run bitwise (planned and
// unplanned), frozen weights never move, and the planned and unplanned
// frozen paths agree on the boundary gradient.
func TestFrozenBackwardParity(t *testing.T) {
	ref := planTestNet(7)     // fully trainable, unplanned
	direct := planTestNet(7)  // frozen, unplanned
	planned := planTestNet(7) // frozen, planned
	pristine := planTestNet(7)
	direct.Freeze(freezeTestBackbone...)
	planned.Freeze(freezeTestBackbone...)

	rng := tensor.NewRNG(17)
	x := randBatch(rng, 4, ref.InShape)
	dout := tensor.New(append([]int{4}, ref.OutShape()...)...)
	rng.FillNorm(dout, 0, 1)

	ref.Forward(x, true)
	ref.Backward(dout)

	direct.Forward(x, true)
	directDx := direct.Backward(dout)

	plan := Compile(planned, 4, true, nil)
	plan.Forward(x)
	planDx := plan.Backward(dout)

	requireBitwise(t, "boundary grad", planDx, directDx)

	refTP := ref.TrainableParams()
	byName := make(map[string]*Param, len(refTP))
	for _, p := range refTP {
		byName[p.Name] = p
	}
	for _, net := range []*Network{direct, planned} {
		for _, p := range net.TrainableParams() {
			requireBitwise(t, "grad "+p.Name, p.Grad, byName[p.Name].Grad)
		}
	}
	// Frozen weights are bitwise-untouched by the whole train step.
	pp := pristine.Params()
	for i, p := range planned.Params() {
		if strings.HasPrefix(p.Name, "c1.") {
			requireBitwise(t, "frozen weight "+p.Name, p.W, pp[i].W)
		}
	}
}

// TestFrozenGradDoneIndices checks the streaming contract the overlapped
// trainer depends on: gradDone fires once per *trainable* layer, indexed in
// TrainableLayers order, deepest first — frozen layers never appear.
func TestFrozenGradDoneIndices(t *testing.T) {
	net := planTestNet(7)
	net.Freeze(freezeTestBackbone...)
	rng := tensor.NewRNG(23)
	x := randBatch(rng, 2, net.InShape)
	dout := tensor.New(append([]int{2}, net.OutShape()...)...)
	rng.FillNorm(dout, 0, 1)

	check := func(tag string, run func(func(int))) {
		var got []int
		run(func(i int) { got = append(got, i) })
		if len(got) != 2 || got[0] != 1 || got[1] != 0 {
			t.Fatalf("%s gradDone order %v, want [1 0]", tag, got)
		}
	}
	plan := Compile(net, 2, true, nil)
	plan.Forward(x)
	check("plan", func(f func(int)) { plan.BackwardStream(dout, f) })
	net.Forward(x, true)
	check("direct", func(f func(int)) { net.BackwardStream(dout, f) })
}

// TestFrozenTrainingPlanZeroAllocs keeps the 0-alloc warm gate on the
// fine-tune configuration.
func TestFrozenTrainingPlanZeroAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	net := planTestNet(13)
	net.Freeze(freezeTestBackbone...)
	plan := Compile(net, 4, true, nil)
	rng := tensor.NewRNG(37)
	x := randBatch(rng, 4, net.InShape)
	labels := []int{0, 1, 1, 0}
	grad := tensor.New(4, 2)
	iter := func() {
		logits := plan.Forward(x)
		SoftmaxCrossEntropyInto(logits, labels, grad)
		plan.Backward(grad)
	}
	iter() // warm
	if allocs := testing.AllocsPerRun(20, iter); allocs != 0 {
		t.Fatalf("warmed frozen training iteration allocates %v objects/op, want 0", allocs)
	}
}

// TestFrozenPlanSkipsGradientBuffers verifies freezing actually drops the
// training-only memory: prefix steps compile on the eval datapath with no
// input-gradient slab, no retained input and no backward scratch, while
// steps at and after the cut keep all of it.
func TestFrozenPlanSkipsGradientBuffers(t *testing.T) {
	net := planTestNet(25)
	net.Freeze(freezeTestBackbone...)
	plan := Compile(net, 4, true, nil)
	if plan.cut != 3 { // c1, r1, p1 are steps 0-2
		t.Fatalf("cut = %d, want 3", plan.cut)
	}
	for i := range plan.steps {
		s := &plan.steps[i]
		if i < plan.cut {
			if s.train || s.dxSlab != nil || s.st.Dcol != nil {
				t.Fatalf("frozen step %d still carries training state", i)
			}
		} else if !s.train || s.dxSlab == nil {
			t.Fatalf("trainable step %d lost its training state", i)
		}
	}
}

func TestFullyFrozenTrainingPlanPanics(t *testing.T) {
	net := planTestNet(7)
	net.Freeze("c1", "c2", "fc")
	defer func() {
		if recover() == nil {
			t.Fatal("training plan over a fully frozen network must panic")
		}
	}()
	Compile(net, 2, true, nil)
}
