package nn

import (
	"fmt"
	"math"

	"deep15pf/internal/tensor"
)

// ReLU is the rectified-linear activation used throughout both paper
// networks.
type ReLU struct {
	LayerName string
	state     PlanState // legacy-path state (direct Forward/Backward)
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{LayerName: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.LayerName }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// Reserve implements PlannedLayer.
func (r *ReLU) Reserve(st *PlanState, a *tensor.Arena, n int, in []int, train bool) {
	if train {
		if need := n * shapeElems(in); cap(st.Mask) < need {
			st.Mask = make([]bool, need)
		}
	}
}

// Forward implements Layer. Eval-mode passes skip the backward mask.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	r.ForwardInto(&r.state, out, x, train)
	return out
}

// ForwardInto implements PlannedLayer. Every element of y is written, so a
// recycled destination cannot leak stale activations.
func (r *ReLU) ForwardInto(st *PlanState, y, x *tensor.Tensor, train bool) {
	if !train {
		st.Mask = st.Mask[:0]
		for i, v := range x.Data {
			if v > 0 {
				y.Data[i] = v
			} else {
				y.Data[i] = 0
			}
		}
		return
	}
	if cap(st.Mask) < x.Len() {
		st.Mask = make([]bool, x.Len())
	}
	st.Mask = st.Mask[:x.Len()]
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			st.Mask[i] = true
		} else {
			y.Data[i] = 0
			st.Mask[i] = false
		}
	}
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dout.Shape...)
	r.BackwardInto(&r.state, dx, dout)
	return dx
}

// BackwardInto implements PlannedLayer.
func (r *ReLU) BackwardInto(st *PlanState, dx, dout *tensor.Tensor) {
	if len(st.Mask) != dout.Len() {
		panic("nn: " + r.LayerName + " Backward without matching train-mode Forward")
	}
	for i, g := range dout.Data {
		if st.Mask[i] {
			dx.Data[i] = g
		} else {
			dx.Data[i] = 0
		}
	}
}

// FLOPs implements Layer.
func (r *ReLU) FLOPs(in []int) FlopCount {
	ops := int64(shapeElems(in))
	return FlopCount{Fwd: ops, Bwd: ops, FwdExecuted: ops, BwdExecuted: ops}
}

// Dense is a fully-connected layer over flattened activations: y = x·Wᵀ + b
// with W stored [Out, In]. The paper deliberately keeps these layers tiny
// (128→2 for HEP) because large dense weights are hostile to scaling.
type Dense struct {
	LayerName    string
	In, Out      int
	Weight, Bias *Param
	state        PlanState // legacy-path state (direct Forward/Backward)
}

// NewDense constructs a fully-connected layer with He-initialised weights.
func NewDense(name string, in, out int, rng *tensor.RNG) *Dense {
	d := &Dense{LayerName: name, In: in, Out: out}
	d.Weight = &Param{
		Name: name + ".weight",
		W:    tensor.New(out, in),
		Grad: tensor.New(out, in),
	}
	d.Bias = &Param{
		Name: name + ".bias",
		W:    tensor.New(out),
		Grad: tensor.New(out),
	}
	HeInit(d.Weight.W, in, rng)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.LayerName }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int {
	if shapeElems(in) != d.In {
		panic(fmt.Sprintf("nn: %s expects %d input features, got shape %v", d.LayerName, d.In, in))
	}
	return []int{d.Out}
}

// Reserve implements PlannedLayer.
func (d *Dense) Reserve(st *PlanState, a *tensor.Arena, n int, in []int, train bool) {}

// Forward implements Layer. x is [N, …] with per-sample size In.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape[0], d.Out)
	d.ForwardInto(&d.state, out, x, train)
	return out
}

// ForwardInto implements PlannedLayer. The GEMM's beta=0 overwrites every
// element of y, so recycled destinations are safe.
func (d *Dense) ForwardInto(st *PlanState, y, x *tensor.Tensor, train bool) {
	n := x.Shape[0]
	if x.Len() != n*d.In {
		panic(fmt.Sprintf("nn: %s got %d elements for batch %d, want %d features per sample", d.LayerName, x.Len(), n, d.In))
	}
	// y (N×Out) = x (N×In) · Wᵀ (In×Out); x is used flat, whatever its
	// nominal shape.
	tensor.Gemm(false, true, n, d.Out, d.In, 1, x.Data, d.Weight.W.Data, 0, y.Data)
	for s := 0; s < n; s++ {
		row := y.Data[s*d.Out : (s+1)*d.Out]
		for j := range row {
			row[j] += d.Bias.W.Data[j]
		}
	}
	if train {
		st.X = x
	} else {
		st.X = nil // inference: keep no backward state alive
	}
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	x := d.state.X
	if x == nil {
		panic("nn: " + d.LayerName + " Backward before Forward")
	}
	dx := tensor.New(x.Shape[0], d.In)
	d.BackwardInto(&d.state, dx, dout)
	return dx
}

// BackwardInto implements PlannedLayer.
func (d *Dense) BackwardInto(st *PlanState, dx, dout *tensor.Tensor) {
	x := st.X
	if x == nil {
		panic("nn: " + d.LayerName + " Backward before Forward")
	}
	n := x.Shape[0]
	// dW (Out×In) += doutᵀ (Out×N) · x (N×In)
	tensor.Gemm(true, false, d.Out, d.In, n, 1, dout.Data, x.Data, 1, d.Weight.Grad.Data)
	// db += column sums of dout
	for s := 0; s < n; s++ {
		row := dout.Data[s*d.Out : (s+1)*d.Out]
		for j := range row {
			d.Bias.Grad.Data[j] += row[j]
		}
	}
	// dx (N×In) = dout (N×Out) · W (Out×In)
	tensor.Gemm(false, false, n, d.In, d.Out, 1, dout.Data, d.Weight.W.Data, 0, dx.Data)
}

// FLOPs implements Layer.
func (d *Dense) FLOPs(in []int) FlopCount {
	fwd := tensor.GemmFLOPs(1, d.Out, d.In)
	fwdExec := 2 * padTo(d.Out, lane) * padTo(d.In, lane)
	return FlopCount{Fwd: fwd, Bwd: 2 * fwd, FwdExecuted: fwdExec, BwdExecuted: 2 * fwdExec}
}

// HeInit fills w with He-normal draws: N(0, 2/fanIn), the standard init for
// ReLU networks (He et al., cited as [34] in the paper).
func HeInit(w *tensor.Tensor, fanIn int, rng *tensor.RNG) {
	if fanIn <= 0 {
		panic("nn: HeInit with non-positive fanIn")
	}
	rng.FillNorm(w, 0, math.Sqrt(2/float64(fanIn)))
}
