package nn

import (
	"testing"
	"testing/quick"

	"deep15pf/internal/tensor"
)

func TestMaxPoolKnownValues(t *testing.T) {
	p := NewMaxPool2D("pool", 2, 2)
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	out := p.Forward(x, false)
	want := []float32{4, 8, 12, 16}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("maxpool = %v, want %v", out.Data, want)
		}
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	p := NewMaxPool2D("pool", 2, 2)
	x := tensor.FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	p.Forward(x, true)
	dout := tensor.FromSlice([]float32{10}, 1, 1, 1, 1)
	dx := p.Backward(dout)
	want := []float32{0, 0, 0, 10}
	for i := range want {
		if dx.Data[i] != want[i] {
			t.Fatalf("dx = %v, want %v", dx.Data, want)
		}
	}
}

func TestMaxPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	p := NewMaxPool2D("pool", 2, 2)
	x := tensor.New(2, 3, 6, 6)
	rng.FillNorm(x, 0, 1)
	checkLayerGradients(t, p, x, rng)
}

// Property: pooling a tensor twice with k=s=1 is the identity, and pooled
// maxima never exceed the input max.
func TestMaxPoolInvariants(t *testing.T) {
	f := func(seed uint32) bool {
		rng := tensor.NewRNG(uint64(seed) + 17)
		h := 2 + rng.Intn(6)
		x := tensor.New(1, 2, h, h)
		rng.FillNorm(x, 0, 1)
		p1 := NewMaxPool2D("p1", 1, 1)
		out := p1.Forward(x, false)
		for i := range out.Data {
			if out.Data[i] != x.Data[i] {
				return false
			}
		}
		p2 := NewMaxPool2D("p2", 2, 2)
		out2 := p2.Forward(x, false)
		return out2.AbsMax() <= x.AbsMax()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalAvgPoolKnownValues(t *testing.T) {
	p := NewGlobalAvgPool("gap")
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 10, 10, 10}, 1, 2, 2, 2)
	out := p.Forward(x, false)
	if out.Shape[0] != 1 || out.Shape[1] != 2 {
		t.Fatalf("gap shape %v", out.Shape)
	}
	if out.Data[0] != 2.5 || out.Data[1] != 10 {
		t.Fatalf("gap = %v", out.Data)
	}
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	p := NewGlobalAvgPool("gap")
	x := tensor.New(2, 3, 4, 4)
	rng.FillNorm(x, 0, 1)
	checkLayerGradients(t, p, x, rng)
}

func TestGlobalAvgPoolBackwardDistributes(t *testing.T) {
	p := NewGlobalAvgPool("gap")
	x := tensor.New(1, 1, 2, 2)
	p.Forward(x, true)
	dout := tensor.FromSlice([]float32{8}, 1, 1)
	dx := p.Backward(dout)
	for _, v := range dx.Data {
		if v != 2 { // 8 / 4 pixels
			t.Fatalf("dx = %v, want uniform 2", dx.Data)
		}
	}
}

func TestPoolOutShapes(t *testing.T) {
	p := NewMaxPool2D("pool", 2, 2)
	got := p.OutShape([]int{128, 224, 224})
	if got[0] != 128 || got[1] != 112 || got[2] != 112 {
		t.Fatalf("OutShape = %v", got)
	}
	g := NewGlobalAvgPool("gap")
	if s := g.OutShape([]int{128, 14, 14}); len(s) != 1 || s[0] != 128 {
		t.Fatalf("gap OutShape = %v", s)
	}
}

func TestMaxPoolNoParams(t *testing.T) {
	if len(NewMaxPool2D("p", 2, 2).Params()) != 0 || len(NewGlobalAvgPool("g").Params()) != 0 {
		t.Fatal("pooling layers must be parameter-free")
	}
}
