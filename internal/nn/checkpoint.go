package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Model checkpointing. The paper snapshots the trained model to the
// filesystem during training ("in some iterations, a checkpointing is
// performed to save the current trained model", §V; the climate sustained
// rate includes one snapshot per 10 iterations). Format (little endian):
//
//	magic  uint32 'D15W'
//	count  uint32 parameter blobs
//	per blob: nameLen uint32, name bytes, numel uint32, float32 data
const checkpointMagic = 0x44313557 // "D15W"

// SaveWeights writes every parameter's current values to w.
func SaveWeights(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(params)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var scratch [4]byte
	for _, p := range params {
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(p.Name)))
		if _, err := bw.Write(scratch[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(scratch[:], uint32(p.W.Len()))
		if _, err := bw.Write(scratch[:]); err != nil {
			return err
		}
		for _, v := range p.W.Data {
			binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(v))
			if _, err := bw.Write(scratch[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadWeights restores parameter values from r into params, validating
// names and sizes so a checkpoint cannot silently load into the wrong
// architecture.
func LoadWeights(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("nn: short checkpoint header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != checkpointMagic {
		return fmt.Errorf("nn: not a checkpoint file")
	}
	if n := binary.LittleEndian.Uint32(hdr[4:]); int(n) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d blobs, model has %d", n, len(params))
	}
	var scratch [4]byte
	for _, p := range params {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return err
		}
		nameLen := binary.LittleEndian.Uint32(scratch[:])
		if nameLen > 4096 {
			return fmt.Errorf("nn: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: checkpoint blob %q does not match parameter %q", name, p.Name)
		}
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return err
		}
		if n := binary.LittleEndian.Uint32(scratch[:]); int(n) != p.W.Len() {
			return fmt.Errorf("nn: %s has %d elements in checkpoint, %d in model", p.Name, n, p.W.Len())
		}
		for i := range p.W.Data {
			if _, err := io.ReadFull(br, scratch[:]); err != nil {
				return err
			}
			p.W.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(scratch[:]))
		}
	}
	return nil
}

// SaveFile checkpoints params to path.
func SaveFile(path string, params []*Param) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveWeights(f, params); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile restores params from path.
func LoadFile(path string, params []*Param) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadWeights(f, params)
}
