package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Model checkpointing. The paper snapshots the trained model to the
// filesystem during training ("in some iterations, a checkpointing is
// performed to save the current trained model", §V; the climate sustained
// rate includes one snapshot per 10 iterations). Format (little endian):
//
//	magic  uint32 'D15W'
//	count  uint32 parameter blobs
//	per blob: nameLen uint32, name bytes, numel uint32, float32 data
const checkpointMagic = 0x44313557 // "D15W"

// codecBuf is the reusable transcode buffer: float32 data crosses the wire
// in codecBuf-sized runs (one PutUint32/Uint32 per element, one Read/Write
// per run) instead of one 4-byte scratch write per element — the difference
// between the encode loop and the filesystem deciding checkpoint
// throughput. 64 KiB keeps the run in L2 while amortising the io calls.
const codecBufBytes = 64 << 10

// putFloats batch-encodes src through buf (len codecBufBytes) into w.
func putFloats(w io.Writer, buf []byte, src []float32) error {
	per := len(buf) / 4
	for off := 0; off < len(src); off += per {
		run := src[off:]
		if len(run) > per {
			run = run[:per]
		}
		for i, v := range run {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		if _, err := w.Write(buf[:len(run)*4]); err != nil {
			return err
		}
	}
	return nil
}

// getFloats batch-decodes len(dst) float32s from r through buf.
func getFloats(r io.Reader, buf []byte, dst []float32) error {
	per := len(buf) / 4
	for off := 0; off < len(dst); off += per {
		run := dst[off:]
		if len(run) > per {
			run = run[:per]
		}
		if _, err := io.ReadFull(r, buf[:len(run)*4]); err != nil {
			return err
		}
		for i := range run {
			run[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
	}
	return nil
}

// SaveWeights writes every parameter's current values to w.
func SaveWeights(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, codecBufBytes)
	binary.LittleEndian.PutUint32(buf[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(params)))
	if _, err := bw.Write(buf[:8]); err != nil {
		return err
	}
	for _, p := range params {
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(p.Name)))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(p.W.Len()))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
		if err := putFloats(bw, buf, p.W.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadWeights restores parameter values from r into params, validating
// names and sizes so a checkpoint cannot silently load into the wrong
// architecture.
func LoadWeights(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	buf := make([]byte, codecBufBytes)
	if _, err := io.ReadFull(br, buf[:8]); err != nil {
		return fmt.Errorf("nn: short checkpoint header: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != checkpointMagic {
		return fmt.Errorf("nn: not a checkpoint file")
	}
	if n := binary.LittleEndian.Uint32(buf[4:]); int(n) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d blobs, model has %d", n, len(params))
	}
	for _, p := range params {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return err
		}
		nameLen := binary.LittleEndian.Uint32(buf[:4])
		if nameLen > 4096 {
			return fmt.Errorf("nn: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: checkpoint blob %q does not match parameter %q", name, p.Name)
		}
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return err
		}
		if n := binary.LittleEndian.Uint32(buf[:4]); int(n) != p.W.Len() {
			return fmt.Errorf("nn: %s has %d elements in checkpoint, %d in model", p.Name, n, p.W.Len())
		}
		if err := getFloats(br, buf, p.W.Data); err != nil {
			return fmt.Errorf("nn: %s: short weight blob: %w", p.Name, err)
		}
	}
	return nil
}

// SaveFile checkpoints params to path.
func SaveFile(path string, params []*Param) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveWeights(f, params); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile restores params from path.
func LoadFile(path string, params []*Param) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadWeights(f, params)
}
