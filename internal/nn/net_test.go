package nn

import (
	"strings"
	"testing"

	"deep15pf/internal/tensor"
)

func tinyNet(rng *tensor.RNG) *Network {
	n := NewNetwork("tiny", 2, 8, 8)
	n.Add(
		NewConv2D("conv1", 2, 4, 3, 1, 1, rng),
		NewReLU("relu1"),
		NewMaxPool2D("pool1", 2, 2),
		NewConv2D("conv2", 4, 4, 3, 1, 1, rng),
		NewReLU("relu2"),
		NewGlobalAvgPool("gap"),
		NewDense("fc", 4, 2, rng),
	)
	return n
}

func TestNetworkShapePropagation(t *testing.T) {
	n := tinyNet(tensor.NewRNG(1))
	out := n.OutShape()
	if len(out) != 1 || out[0] != 2 {
		t.Fatalf("OutShape = %v", out)
	}
	x := tensor.New(3, 2, 8, 8)
	y := n.Forward(x, false)
	if y.Shape[0] != 3 || y.Shape[1] != 2 {
		t.Fatalf("forward shape %v", y.Shape)
	}
}

func TestNetworkAddRejectsIncompatible(t *testing.T) {
	rng := tensor.NewRNG(2)
	n := NewNetwork("bad", 2, 8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on channel mismatch")
		}
	}()
	n.Add(NewConv2D("conv", 3, 4, 3, 1, 1, rng)) // wants 3 channels, gets 2
}

func TestNetworkEndToEndGradient(t *testing.T) {
	rng := tensor.NewRNG(3)
	n := tinyNet(rng)
	x := tensor.New(2, 2, 8, 8)
	rng.FillNorm(x, 0, 1)
	labels := []int{0, 1}

	loss := func() float64 {
		logits := n.Forward(x, true)
		l, _ := SoftmaxCrossEntropy(logits, labels)
		return l
	}
	n.ZeroGrad()
	logits := n.Forward(x, true)
	_, dlogits := SoftmaxCrossEntropy(logits, labels)
	dx := n.Backward(dlogits)

	// The composition contains ReLU and maxpool kinks, so a small fraction
	// of finite-difference probes may cross an argmax boundary; the smooth
	// sub-networks are checked strictly in their own tests.
	gradCheckLoose(t, "net/dx", x.Data, dx.Data, loss, 7)
	for _, p := range n.Params() {
		stride := 1
		if p.W.Len() > 40 {
			stride = p.W.Len() / 40
		}
		gradCheckLoose(t, "net/"+p.Name, p.W.Data, p.Grad.Data, loss, stride)
	}
}

func TestNetworkZeroGrad(t *testing.T) {
	rng := tensor.NewRNG(4)
	n := tinyNet(rng)
	x := tensor.New(1, 2, 8, 8)
	rng.FillNorm(x, 0, 1)
	logits := n.Forward(x, true)
	_, d := SoftmaxCrossEntropy(logits, []int{0})
	n.Backward(d)
	n.ZeroGrad()
	for _, p := range n.Params() {
		if p.Grad.AbsMax() != 0 {
			t.Fatalf("%s grad not zeroed", p.Name)
		}
	}
}

func TestNetworkScaleGrad(t *testing.T) {
	rng := tensor.NewRNG(5)
	n := tinyNet(rng)
	x := tensor.New(1, 2, 8, 8)
	rng.FillNorm(x, 0, 1)
	logits := n.Forward(x, true)
	_, d := SoftmaxCrossEntropy(logits, []int{0})
	n.Backward(d)
	before := n.Params()[0].Grad.Clone()
	n.ScaleGrad(0.5)
	after := n.Params()[0].Grad
	for i := range before.Data {
		if after.Data[i] != before.Data[i]*0.5 {
			t.Fatal("ScaleGrad wrong")
		}
	}
}

func TestNetworkParamAccounting(t *testing.T) {
	n := tinyNet(tensor.NewRNG(6))
	// conv1: 4·(2·9)+4=76; conv2: 4·(4·9)+4=148; fc: 2·4+2=10 → 234.
	if n.NumParams() != 234 {
		t.Fatalf("NumParams = %d, want 234", n.NumParams())
	}
	if n.ParamBytes() != 936 {
		t.Fatalf("ParamBytes = %d, want 936", n.ParamBytes())
	}
}

func TestTrainableLayers(t *testing.T) {
	n := tinyNet(tensor.NewRNG(7))
	tl := n.TrainableLayers()
	if len(tl) != 3 {
		t.Fatalf("trainable layers = %d, want 3 (conv1, conv2, fc)", len(tl))
	}
}

func TestFLOPBreakdownSumsToTotal(t *testing.T) {
	n := tinyNet(tensor.NewRNG(8))
	var sum FlopCount
	for _, row := range n.FLOPBreakdown() {
		sum = sum.Add(row.Count)
	}
	total := n.FLOPsPerSample()
	if sum != total {
		t.Fatalf("breakdown sum %+v != total %+v", sum, total)
	}
	if total.Fwd <= 0 || total.Bwd <= 0 {
		t.Fatal("flop counts must be positive")
	}
	if total.TotalExecuted() < total.Total() {
		t.Fatal("executed flops must dominate algorithmic")
	}
}

func TestFlopCountArithmetic(t *testing.T) {
	a := FlopCount{Fwd: 1, Bwd: 2, FwdExecuted: 3, BwdExecuted: 4}
	b := a.Scale(2)
	if b.Fwd != 2 || b.BwdExecuted != 8 {
		t.Fatalf("Scale = %+v", b)
	}
	c := a.Add(b)
	if c.Total() != 9 || c.TotalExecuted() != 21 {
		t.Fatalf("Add = %+v", c)
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	rngA := tensor.NewRNG(9)
	rngB := tensor.NewRNG(10)
	a := tinyNet(rngA)
	b := tinyNet(rngB)
	b.CopyWeightsFrom(a)
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatal("weights not copied")
			}
		}
	}
	// Must be a copy, not an alias.
	pb[0].W.Data[0] += 1
	if pa[0].W.Data[0] == pb[0].W.Data[0] {
		t.Fatal("CopyWeightsFrom aliased storage")
	}
}

func TestTimedPassesMatchUntimed(t *testing.T) {
	rng := tensor.NewRNG(11)
	n := tinyNet(rng)
	x := tensor.New(1, 2, 8, 8)
	rng.FillNorm(x, 0, 1)
	y1 := n.Forward(x, true)
	y2, timings := n.ForwardTimed(x, true)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("timed forward changed results")
		}
	}
	if len(timings) != len(n.Layers) {
		t.Fatalf("timings = %d entries", len(timings))
	}
	_, d := SoftmaxCrossEntropy(y2, []int{0})
	n.BackwardTimed(d, timings)
	for _, tm := range timings {
		if tm.Fwd < 0 || tm.Bwd < 0 {
			t.Fatal("negative timing")
		}
	}
}

func TestSummaryMentionsAllLayers(t *testing.T) {
	n := tinyNet(tensor.NewRNG(12))
	s := n.Summary()
	for _, name := range []string{"conv1", "pool1", "gap", "fc", "total params"} {
		if !strings.Contains(s, name) {
			t.Fatalf("summary missing %q:\n%s", name, s)
		}
	}
}

func TestInferMatchesForwardEval(t *testing.T) {
	rng := tensor.NewRNG(13)
	n := tinyNet(rng)
	x := tensor.New(2, 2, 8, 8)
	rng.FillNorm(x, 0, 1)
	want := n.Forward(x, false)
	got := n.Infer(x)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatal("Infer diverges from Forward(train=false)")
		}
	}
}

func TestReleaseGradients(t *testing.T) {
	rng := tensor.NewRNG(14)
	n := tinyNet(rng)
	x := tensor.New(1, 2, 8, 8)
	rng.FillNorm(x, 0, 1)
	before := n.Infer(x)

	n.ReleaseGradients()
	for _, p := range n.Params() {
		if p.Grad != nil {
			t.Fatalf("%s still holds a gradient accumulator", p.Name)
		}
	}
	// ZeroGrad/ScaleGrad must be safe no-ops on a released network, and
	// inference must be unaffected.
	n.ZeroGrad()
	n.ScaleGrad(0.5)
	after := n.Infer(x)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("ReleaseGradients changed inference results")
		}
	}
}
