package nn

import (
	"math"
	"testing"
	"testing/quick"

	"deep15pf/internal/tensor"
)

func TestDeconvOutShapeInvertsConv(t *testing.T) {
	// A deconv with the same geometry as a strided conv must restore the
	// conv's input spatial size — the property the climate decoder relies
	// on to reconstruct the input.
	rng := tensor.NewRNG(1)
	conv := NewConv2D("enc", 8, 16, 3, 2, 1, rng)
	dec := NewDeconv2D("dec", 16, 8, 3, 2, 1, rng)
	in := []int{8, 65, 65} // odd size: (65+2-3)/2+1 = 33; (33-1)*2+3-2 = 65
	mid := conv.OutShape(in)
	back := dec.OutShape(mid)
	if back[1] != in[1] || back[2] != in[2] {
		t.Fatalf("conv %v -> %v -> deconv %v", in, mid, back)
	}
}

// TestDeconvIsConvTranspose verifies the paper's §III-C construction
// directly: for zero bias, ⟨deconv(x), y⟩ == ⟨x, conv(y)⟩ when the deconv
// and conv share the same weight tensor — i.e. deconv forward is exactly
// the adjoint (backward-data) of the convolution.
func TestDeconvIsConvTranspose(t *testing.T) {
	f := func(seed uint32) bool {
		rng := tensor.NewRNG(uint64(seed)*31 + 7)
		inC := 1 + rng.Intn(3)
		outC := 1 + rng.Intn(3)
		k := 2 + rng.Intn(2)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		h := 3 + rng.Intn(4)
		if k > h+2*pad {
			return true
		}
		dec := NewDeconv2D("dec", inC, outC, k, stride, pad, rng)
		dec.Bias.W.Zero()
		// The adjoint conv maps outC→inC with the same weights.
		conv := NewConv2D("conv", outC, inC, k, stride, pad, rng)
		conv.Bias.W.Zero()
		conv.Weight.W.CopyFrom(dec.Weight.W)

		x := tensor.New(1, inC, h, h)
		rng.FillNorm(x, 0, 1)
		yShape := dec.OutShape([]int{inC, h, h})
		y := tensor.New(1, yShape[0], yShape[1], yShape[2])
		rng.FillNorm(y, 0, 1)

		dx := dec.Forward(x, false)
		cy := conv.Forward(y, false)
		lhs := tensor.Dot(dx.Data, y.Data)
		rhs := tensor.Dot(x.Data, cy.Data)
		return math.Abs(lhs-rhs) <= 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeconvGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	for _, cfg := range []struct{ inC, outC, k, s, p, h int }{
		{2, 3, 3, 2, 1, 3},
		{3, 2, 2, 2, 0, 3},
		{1, 2, 3, 1, 1, 4},
	} {
		d := NewDeconv2D("deconv", cfg.inC, cfg.outC, cfg.k, cfg.s, cfg.p, rng)
		x := tensor.New(2, cfg.inC, cfg.h, cfg.h)
		rng.FillNorm(x, 0, 1)
		checkLayerGradients(t, d, x, rng)
	}
}

func TestDeconvUpsamples(t *testing.T) {
	rng := tensor.NewRNG(4)
	d := NewDeconv2D("dec", 4, 2, 3, 2, 1, rng)
	x := tensor.New(1, 4, 8, 8)
	out := d.Forward(x, false)
	if out.Shape[2] != 15 || out.Shape[3] != 15 {
		t.Fatalf("deconv output %v, want 15x15", out.Shape)
	}
}

func TestDeconvFLOPsMirrorConv(t *testing.T) {
	// Paper: deconv layers "perform very similarly to the corresponding
	// convolution layers" — counts must match the adjoint conv's.
	rng := tensor.NewRNG(5)
	dec := NewDeconv2D("dec", 64, 32, 3, 2, 1, rng)
	conv := NewConv2D("conv", 32, 64, 3, 2, 1, rng)
	in := []int{64, 16, 16}
	outShape := dec.OutShape(in)
	fDec := dec.FLOPs(in)
	fConv := conv.FLOPs(outShape)
	if fDec.Fwd != fConv.Fwd {
		t.Fatalf("deconv fwd %d != adjoint conv fwd %d", fDec.Fwd, fConv.Fwd)
	}
}

func TestDeconvBackwardBeforeForwardPanics(t *testing.T) {
	rng := tensor.NewRNG(6)
	d := NewDeconv2D("dec", 1, 1, 3, 1, 1, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Backward(tensor.New(1, 1, 4, 4))
}
