package nn

import (
	"testing"

	"deep15pf/internal/tensor"
)

func streamTestNet(seed uint64) *Network {
	rng := tensor.NewRNG(seed)
	n := NewNetwork("stream", 1, 8, 8)
	n.Add(
		NewConv2D("conv1", 1, 4, 3, 1, 1, rng),
		NewReLU("relu1"),
		NewConv2D("conv2", 4, 4, 3, 1, 1, rng),
		NewMaxPool2D("pool", 2, 2),
		NewGlobalAvgPool("gap"),
		NewDense("fc", 4, 3, rng),
	)
	return n
}

// TestBackwardStreamOrderAndFinality: gradDone must fire once per trainable
// layer in reverse topological order, and at the instant a layer is
// notified its gradients must already equal their final values.
func TestBackwardStreamOrderAndFinality(t *testing.T) {
	for _, planned := range []bool{false, true} {
		net := streamTestNet(3)
		layers := net.TrainableLayers()
		rng := tensor.NewRNG(9)
		x := tensor.New(2, 1, 8, 8)
		rng.FillNorm(x, 0, 1)

		net.ZeroGrad()
		var order []int
		snaps := make([][][]float32, len(layers))
		record := func(l int) {
			order = append(order, l)
			for _, prm := range layers[l].Params() {
				snaps[l] = append(snaps[l], append([]float32(nil), prm.Grad.Data...))
			}
		}
		if planned {
			plan := Compile(net, 2, true, nil)
			out := plan.Forward(x)
			dout := out.Clone()
			plan.BackwardStream(dout, record)
		} else {
			out := net.Forward(x, true)
			dout := out.Clone()
			net.BackwardStream(dout, record)
		}

		if len(order) != len(layers) {
			t.Fatalf("planned=%v: %d notifications for %d trainable layers", planned, len(order), len(layers))
		}
		for i, l := range order {
			if want := len(layers) - 1 - i; l != want {
				t.Fatalf("planned=%v: notification %d was layer %d, want %d (reverse order)", planned, i, l, want)
			}
		}
		// Finality: the snapshot taken at notification time must be the
		// gradient the layer holds after the whole backward pass.
		for l, layer := range layers {
			for pi, prm := range layer.Params() {
				for i, v := range prm.Grad.Data {
					if snaps[l][pi][i] != v {
						t.Fatalf("planned=%v: layer %d param %d grad changed after notification", planned, l, pi)
					}
				}
			}
		}
	}
}

// TestBackwardStreamNilCallbackMatchesBackward: the wrapper contract — a
// nil callback is exactly the legacy whole-backward entry point.
func TestBackwardStreamNilCallbackMatchesBackward(t *testing.T) {
	netA := streamTestNet(5)
	netB := streamTestNet(5)
	rng := tensor.NewRNG(11)
	x := tensor.New(2, 1, 8, 8)
	rng.FillNorm(x, 0, 1)

	outA := netA.Forward(x, true)
	dxA := netA.Backward(outA.Clone())
	outB := netB.Forward(x, true)
	dxB := netB.BackwardStream(outB.Clone(), nil)
	for i := range dxA.Data {
		if dxA.Data[i] != dxB.Data[i] {
			t.Fatalf("input gradients diverge at %d", i)
		}
	}
	pa, pb := netA.Params(), netB.Params()
	for i := range pa {
		for j := range pa[i].Grad.Data {
			if pa[i].Grad.Data[j] != pb[i].Grad.Data[j] {
				t.Fatalf("param %s grad diverges at %d", pa[i].Name, j)
			}
		}
	}
}
