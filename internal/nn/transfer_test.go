package nn

import (
	"bytes"
	"strings"
	"testing"

	"deep15pf/internal/tensor"
)

// saveBlobs round-trips params through the D15W codec into arch-agnostic
// blobs, the donor side of every transfer test.
func saveBlobs(t *testing.T, params []*Param) []WeightBlob {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveWeights(&buf, params); err != nil {
		t.Fatalf("save: %v", err)
	}
	blobs, err := ReadWeightBlobs(&buf)
	if err != nil {
		t.Fatalf("read blobs: %v", err)
	}
	return blobs
}

func TestReadWeightBlobsRoundTrip(t *testing.T) {
	net := planTestNet(3)
	blobs := saveBlobs(t, net.Params())
	if len(blobs) != len(net.Params()) {
		t.Fatalf("%d blobs, want %d", len(blobs), len(net.Params()))
	}
	for i, p := range net.Params() {
		if blobs[i].Name != p.Name {
			t.Fatalf("blob %d name %q, want %q", i, blobs[i].Name, p.Name)
		}
		if len(blobs[i].Data) != p.W.Len() {
			t.Fatalf("%s: %d elements, want %d", p.Name, len(blobs[i].Data), p.W.Len())
		}
		for j, v := range p.W.Data {
			if blobs[i].Data[j] != v {
				t.Fatalf("%s diverges at %d", p.Name, j)
			}
		}
	}
}

func TestReadWeightBlobsRejectsGarbage(t *testing.T) {
	if _, err := ReadWeightBlobs(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage stream must be rejected")
	}
}

// TestMapWeightsEdgeCases is the satellite table: every way a donor
// checkpoint can mismatch the target architecture must surface as an
// explicit error (or an explicit report when the option relaxes it), never
// a silent partial load.
func TestMapWeightsEdgeCases(t *testing.T) {
	// Donor: the standard test net. Target variants are built per case.
	donor := planTestNet(3)

	cases := []struct {
		name    string
		dst     func() []*Param
		src     func() []WeightBlob
		opt     MapOptions
		wantErr string // substring of the error, "" = success
		check   func(t *testing.T, res MapResult)
	}{
		{
			name:    "identical arch strict",
			dst:     func() []*Param { return planTestNet(9).Params() },
			src:     func() []WeightBlob { return saveBlobs(t, donor.Params()) },
			wantErr: "",
			check: func(t *testing.T, res MapResult) {
				if len(res.Mapped) != len(donor.Params()) || len(res.Extra) != 0 || len(res.Unused) != 0 {
					t.Fatalf("mapped=%v extra=%v unused=%v", res.Mapped, res.Extra, res.Unused)
				}
			},
		},
		{
			name: "name match with shape mismatch",
			dst: func() []*Param {
				// Same layer names, different filter count: c1 is 8 wide here.
				rng := tensor.NewRNG(9)
				net := NewNetwork("wide", 3, 8, 8)
				net.Add(NewConv2D("c1", 3, 8, 3, 1, 1, rng))
				return net.Params()
			},
			src:     func() []WeightBlob { return saveBlobs(t, donor.Params()) },
			opt:     MapOptions{AllowUnused: true},
			wantErr: "shape mismatch",
		},
		{
			name: "missing layer in source strict",
			dst:  func() []*Param { return planTestNet(9).Params() },
			src: func() []WeightBlob {
				return saveBlobs(t, donor.Layers[0].Params()) // c1 only
			},
			wantErr: "has no source blob",
		},
		{
			name: "missing layer tolerated as Extra",
			dst:  func() []*Param { return planTestNet(9).Params() },
			src: func() []WeightBlob {
				return saveBlobs(t, donor.Layers[0].Params())
			},
			opt: MapOptions{AllowExtra: true},
			check: func(t *testing.T, res MapResult) {
				if len(res.Mapped) != 2 { // c1.weight, c1.bias
					t.Fatalf("mapped %v, want the c1 pair", res.Mapped)
				}
				if len(res.Extra) != len(donor.Params())-2 {
					t.Fatalf("extra %v", res.Extra)
				}
			},
		},
		{
			name: "extra blob in source strict",
			dst: func() []*Param {
				return planTestNet(9).Layers[0].Params() // target is c1 only
			},
			src:     func() []WeightBlob { return saveBlobs(t, donor.Params()) },
			wantErr: "matches no target parameter",
		},
		{
			name: "extra blob tolerated as Unused",
			dst: func() []*Param {
				return planTestNet(9).Layers[0].Params()
			},
			src: func() []WeightBlob { return saveBlobs(t, donor.Params()) },
			opt: MapOptions{AllowUnused: true},
			check: func(t *testing.T, res MapResult) {
				if len(res.Mapped) != 2 || len(res.Unused) != len(donor.Params())-2 {
					t.Fatalf("mapped=%v unused=%v", res.Mapped, res.Unused)
				}
			},
		},
		{
			name: "duplicate source blob",
			dst:  func() []*Param { return planTestNet(9).Params() },
			src: func() []WeightBlob {
				blobs := saveBlobs(t, donor.Params())
				return append(blobs, blobs[0])
			},
			wantErr: "duplicate source blob",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := MapWeights(tc.dst(), tc.src(), tc.opt)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if tc.check != nil {
				tc.check(t, res)
			}
		})
	}
}

// TestMapWeightsTransfersValues confirms mapped values land bitwise and
// unmapped target parameters keep their initialisation — the property the
// fine-tune path stands on.
func TestMapWeightsTransfersValues(t *testing.T) {
	donor := planTestNet(3)
	target := planTestNet(11) // different init
	before := planTestNet(11)

	// Donor blobs minus the head: the classic backbone transfer.
	var backbone []*Param
	for _, p := range donor.Params() {
		if !strings.HasPrefix(p.Name, "fc.") {
			backbone = append(backbone, p)
		}
	}
	res, err := MapWeights(target.Params(), saveBlobs(t, backbone), MapOptions{AllowExtra: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Extra) != 2 { // fc.weight, fc.bias stay fresh
		t.Fatalf("extra %v, want the fc pair", res.Extra)
	}
	dp, tp, bp := donor.Params(), target.Params(), before.Params()
	for i := range tp {
		want := dp[i]
		if strings.HasPrefix(tp[i].Name, "fc.") {
			want = bp[i]
		}
		requireBitwise(t, tp[i].Name, tp[i].W, want.W)
	}
	if res.Elems == 0 {
		t.Fatal("no elements copied")
	}
}
