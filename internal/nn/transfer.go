package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Transfer learning: loading a donor checkpoint into a *different*
// architecture. LoadWeights is deliberately strict — positional, full-model,
// exact names — because bit-exact resume depends on it. Fine-tuning needs
// the opposite: read whatever blobs a donor D15W file holds, then map the
// compatible subset into the target by name and shape, with the
// incompatibilities reported explicitly rather than silently skipped.

// WeightBlob is one named parameter read from a D15W checkpoint,
// independent of any architecture.
type WeightBlob struct {
	Name string
	Data []float32
}

// ReadWeightBlobs parses a D15W stream into its named blobs without
// requiring the reader to know the donor architecture. It is the
// arch-agnostic counterpart of LoadWeights.
func ReadWeightBlobs(r io.Reader) ([]WeightBlob, error) {
	br := bufio.NewReader(r)
	buf := make([]byte, codecBufBytes)
	if _, err := io.ReadFull(br, buf[:8]); err != nil {
		return nil, fmt.Errorf("nn: short checkpoint header: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != checkpointMagic {
		return nil, fmt.Errorf("nn: not a checkpoint file")
	}
	count := binary.LittleEndian.Uint32(buf[4:])
	if count > 1<<20 {
		return nil, fmt.Errorf("nn: implausible blob count %d", count)
	}
	blobs := make([]WeightBlob, 0, count)
	for i := 0; i < int(count); i++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("nn: blob %d: %w", i, err)
		}
		nameLen := binary.LittleEndian.Uint32(buf[:4])
		if nameLen > 4096 {
			return nil, fmt.Errorf("nn: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("nn: blob %d: %w", i, err)
		}
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("nn: %s: %w", name, err)
		}
		numel := binary.LittleEndian.Uint32(buf[:4])
		data := make([]float32, numel)
		if err := getFloats(br, buf, data); err != nil {
			return nil, fmt.Errorf("nn: %s: short weight blob: %w", name, err)
		}
		blobs = append(blobs, WeightBlob{Name: string(name), Data: data})
	}
	return blobs, nil
}

// ReadWeightBlobsFile reads every blob of the D15W checkpoint at path.
func ReadWeightBlobsFile(path string) ([]WeightBlob, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadWeightBlobs(f)
}

// MapOptions controls which name-set mismatches MapWeights tolerates. The
// zero value is fully strict: any divergence between source blobs and
// target parameters is an error.
type MapOptions struct {
	// AllowExtra permits target parameters with no source blob — the new
	// head layers a fine-tune run trains from their fresh initialisation.
	AllowExtra bool
	// AllowUnused permits source blobs no target parameter claims — the
	// donor's old head that transfer learning discards.
	AllowUnused bool
}

// MapResult reports what a MapWeights call did.
type MapResult struct {
	Mapped []string // target parameters that received donor values
	Extra  []string // target parameters left at their initialisation (AllowExtra)
	Unused []string // donor blobs no target parameter claimed (AllowUnused)
	Elems  int      // total float32 elements copied
}

// MapWeights copies donor blobs into the matching target parameters by
// name. A name match with a different element count is always an explicit
// error — shape drift between nominally shared layers is the classic silent
// transfer-learning bug. Missing and surplus names are errors too unless
// the corresponding MapOptions field relaxes them; duplicate donor names
// are always rejected. Target parameters are matched in order, so Mapped
// preserves layer order.
func MapWeights(dst []*Param, src []WeightBlob, opt MapOptions) (MapResult, error) {
	var res MapResult
	byName := make(map[string]*WeightBlob, len(src))
	for i := range src {
		b := &src[i]
		if _, dup := byName[b.Name]; dup {
			return res, fmt.Errorf("nn: map weights: duplicate source blob %q", b.Name)
		}
		byName[b.Name] = b
	}
	claimed := make(map[string]bool, len(dst))
	for _, p := range dst {
		b, ok := byName[p.Name]
		if !ok {
			if !opt.AllowExtra {
				return res, fmt.Errorf("nn: map weights: target parameter %q has no source blob (donor holds: %s)", p.Name, blobNames(src))
			}
			res.Extra = append(res.Extra, p.Name)
			continue
		}
		if len(b.Data) != p.W.Len() {
			return res, fmt.Errorf("nn: map weights: %q has %d elements in source, %d in target — shape mismatch", p.Name, len(b.Data), p.W.Len())
		}
		copy(p.W.Data, b.Data)
		claimed[p.Name] = true
		res.Mapped = append(res.Mapped, p.Name)
		res.Elems += len(b.Data)
	}
	for _, b := range src {
		if claimed[b.Name] {
			continue
		}
		if !opt.AllowUnused {
			return res, fmt.Errorf("nn: map weights: source blob %q matches no target parameter", b.Name)
		}
		res.Unused = append(res.Unused, b.Name)
	}
	return res, nil
}

// blobNames renders a sorted, comma-separated name list for error messages.
func blobNames(src []WeightBlob) string {
	names := make([]string, len(src))
	for i, b := range src {
		names[i] = b.Name
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
