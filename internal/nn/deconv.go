package nn

import (
	"fmt"

	"deep15pf/internal/tensor"
)

// Deconv2D is a transposed convolution ("deconvolution"). The paper's §III-C
// notes that MKL 2017 had no optimized deconvolution, so they implemented it
// with the observation that *the convolution backward pass computes the
// deconvolution forward pass and vice versa*. We do exactly that:
//
//   - deconv forward(x)  = conv backward-data applied to x  (GEMM + col2im)
//   - deconv backward(dy) = conv forward applied to dy       (im2col + GEMM)
//   - deconv weight grad  = conv weight grad with the roles of input and
//     output swapped.
//
// Weights are stored [InC, OutC·KH·KW] — i.e. as the weights of the adjoint
// convolution that maps the deconvolution's *output* back to its *input*.
// The output spatial size is (H-1)·Stride + K − 2·Pad, the unique size whose
// convolution with the same geometry returns H.
type Deconv2D struct {
	LayerName    string
	InC, OutC    int
	KH, KW       int
	Stride, Pad  int
	Weight, Bias *Param
	state        PlanState // legacy-path state (direct Forward/Backward)
}

// NewDeconv2D constructs a transposed-convolution layer.
func NewDeconv2D(name string, inC, outC, k, stride, pad int, rng *tensor.RNG) *Deconv2D {
	d := &Deconv2D{
		LayerName: name,
		InC:       inC, OutC: outC,
		KH: k, KW: k,
		Stride: stride, Pad: pad,
	}
	d.Weight = &Param{
		Name: name + ".weight",
		W:    tensor.New(inC, outC*k*k),
		Grad: tensor.New(inC, outC*k*k),
	}
	d.Bias = &Param{
		Name: name + ".bias",
		W:    tensor.New(outC),
		Grad: tensor.New(outC),
	}
	HeInit(d.Weight.W, outC*k*k, rng)
	return d
}

// Name implements Layer.
func (d *Deconv2D) Name() string { return d.LayerName }

// Params implements Layer.
func (d *Deconv2D) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// outHW returns the upsampled spatial size for an input spatial size.
func (d *Deconv2D) outHW(h, w int) (int, int) {
	return (h-1)*d.Stride + d.KH - 2*d.Pad, (w-1)*d.Stride + d.KW - 2*d.Pad
}

// OutShape implements Layer.
func (d *Deconv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != d.InC {
		panic(fmt.Sprintf("nn: %s expects [C=%d,H,W] input shape, got %v", d.LayerName, d.InC, in))
	}
	oh, ow := d.outHW(in[1], in[2])
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s output collapses for input %v", d.LayerName, in))
	}
	return []int{d.OutC, oh, ow}
}

// Reserve implements PlannedLayer. The lowering scratch is shared by
// forward (Wᵀ·x before col2im) and backward (im2col of dy), which have the
// same (OutC·KH·KW)×(H·W) shape by the adjoint construction.
func (d *Deconv2D) Reserve(st *PlanState, a *tensor.Arena, n int, in []int, train bool) {
	k := d.OutC * d.KH * d.KW
	cols := in[1] * in[2]
	st.Col = scratch(a, st.Col, k*cols)
}

// Forward implements Layer: y = col2im(Wᵀ·x) — the conv backward-data path.
func (d *Deconv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[1] != d.InC {
		panic(fmt.Sprintf("nn: %s got input shape %v, want [N,%d,H,W]", d.LayerName, x.Shape, d.InC))
	}
	oh, ow := d.outHW(x.Shape[2], x.Shape[3])
	out := tensor.New(x.Shape[0], d.OutC, oh, ow)
	d.ForwardInto(&d.state, out, x, train)
	return out
}

// ForwardInto implements PlannedLayer.
func (d *Deconv2D) ForwardInto(st *PlanState, y, x *tensor.Tensor, train bool) {
	if x.Rank() != 4 || x.Shape[1] != d.InC {
		panic(fmt.Sprintf("nn: %s got input shape %v, want [N,%d,H,W]", d.LayerName, x.Shape, d.InC))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := d.outHW(h, w)
	k := d.OutC * d.KH * d.KW
	cols := h * w // the adjoint conv's output positions = our input positions
	st.Col = scratch(nil, st.Col, k*cols)
	col := st.Col[:k*cols]
	clear(y.Data) // col2im accumulates
	inStride := d.InC * h * w
	outStride := d.OutC * oh * ow
	for s := 0; s < n; s++ {
		xs := x.Data[s*inStride : (s+1)*inStride]
		// col = Wᵀ (k×InC) · x_s (InC×cols)
		tensor.Gemm(true, false, k, cols, d.InC, 1, d.Weight.W.Data, xs, 0, col)
		ys := y.Data[s*outStride : (s+1)*outStride]
		tensor.Col2im(col, d.OutC, oh, ow, d.KH, d.KW, d.Stride, d.Pad, ys)
		for f := 0; f < d.OutC; f++ {
			b := d.Bias.W.Data[f]
			if b == 0 {
				continue
			}
			row := ys[f*oh*ow : (f+1)*oh*ow]
			for i := range row {
				row[i] += b
			}
		}
	}
	if train {
		st.X = x
	} else {
		st.X = nil
	}
}

// Backward implements Layer: dx = W·im2col(dy) — the conv forward path —
// and dW = x·im2col(dy)ᵀ.
func (d *Deconv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	x := d.state.X
	if x == nil {
		panic("nn: " + d.LayerName + " Backward before Forward")
	}
	dx := tensor.New(x.Shape...)
	d.BackwardInto(&d.state, dx, dout)
	return dx
}

// BackwardInto implements PlannedLayer.
func (d *Deconv2D) BackwardInto(st *PlanState, dx, dout *tensor.Tensor) {
	x := st.X
	if x == nil {
		panic("nn: " + d.LayerName + " Backward before Forward")
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := d.outHW(h, w)
	k := d.OutC * d.KH * d.KW
	cols := h * w
	col := st.Col[:k*cols]
	inStride := d.InC * h * w
	outStride := d.OutC * oh * ow
	for s := 0; s < n; s++ {
		dy := dout.Data[s*outStride : (s+1)*outStride]
		tensor.Im2col(dy, d.OutC, oh, ow, d.KH, d.KW, d.Stride, d.Pad, col)
		// dx_s = W (InC×k) · col (k×cols)
		tensor.Gemm(false, false, d.InC, cols, k, 1, d.Weight.W.Data, col, 0, dx.Data[s*inStride:(s+1)*inStride])
		// dW += x_s (InC×cols) · colᵀ (cols×k)
		xs := x.Data[s*inStride : (s+1)*inStride]
		tensor.Gemm(false, true, d.InC, k, cols, 1, xs, col, 1, d.Weight.Grad.Data)
		// db += per-channel sums of dy
		for f := 0; f < d.OutC; f++ {
			row := dy[f*oh*ow : (f+1)*oh*ow]
			var sum float32
			for _, v := range row {
				sum += v
			}
			d.Bias.Grad.Data[f] += sum
		}
	}
}

// FLOPs implements Layer. The paper observes these layers "perform very
// similarly to the corresponding convolution layers" — and indeed the counts
// are the mirrored conv counts.
func (d *Deconv2D) FLOPs(in []int) FlopCount {
	k := d.OutC * d.KH * d.KW
	cols := in[1] * in[2]
	fwd := tensor.GemmFLOPs(k, cols, d.InC)
	kPad := padTo(d.OutC, lane) * int64(d.KH*d.KW)
	fwdExec := 2 * kPad * padTo(cols, lane) * padTo(d.InC, lane)
	return FlopCount{Fwd: fwd, Bwd: 2 * fwd, FwdExecuted: fwdExec, BwdExecuted: 2 * fwdExec}
}
