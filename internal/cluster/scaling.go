package cluster

import "fmt"

// ScalePoint is one point of a scaling curve.
type ScalePoint struct {
	Nodes      int
	Groups     int
	Throughput float64 // images/second
	Speedup    float64 // vs the 1-node baseline of the sweep
	IterTime   float64 // mean seconds per iteration
}

// StrongScaling reproduces the Fig 6 experiment: total batch per update is
// fixed (2048 in the paper); the synchronous configuration splits it over
// all nodes, while each hybrid group is assigned a complete batch
// (§VI-B1). Speedups are relative to a single node processing one full
// batch, matching the figure's normalisation.
func StrongScaling(m MachineSpec, p NetProfile, nodesList []int, groups, batchPerGroup, iterations int, seed uint64) []ScalePoint {
	base := Simulate(m, p, RunConfig{
		Nodes: 1, Groups: 1, BatchPerGroup: batchPerGroup,
		Iterations: iterations, Seed: seed,
	})
	points := make([]ScalePoint, 0, len(nodesList))
	for _, n := range nodesList {
		g := groups
		if n < g {
			g = 1
		}
		r := Simulate(m, p, RunConfig{
			Nodes: n, Groups: g, BatchPerGroup: batchPerGroup,
			Iterations: iterations, Seed: seed + uint64(n),
		})
		points = append(points, ScalePoint{
			Nodes: n, Groups: g,
			Throughput: r.Throughput,
			Speedup:    r.Throughput / base.Throughput,
			IterTime:   r.MeanIterTime(),
		})
	}
	return points
}

// WeakScaling reproduces the Fig 7 experiment: batch fixed at 8 per node
// for every configuration; speedup is throughput relative to one node
// processing batch 8.
func WeakScaling(m MachineSpec, p NetProfile, nodesList []int, groups, batchPerNode, iterations int, seed uint64) []ScalePoint {
	base := Simulate(m, p, RunConfig{
		Nodes: 1, Groups: 1, BatchPerGroup: batchPerNode,
		Iterations: iterations, Seed: seed,
	})
	points := make([]ScalePoint, 0, len(nodesList))
	for _, n := range nodesList {
		g := groups
		if n < g {
			g = 1
		}
		r := Simulate(m, p, RunConfig{
			Nodes: n, Groups: g, BatchPerGroup: batchPerNode * (n / g),
			Iterations: iterations, Seed: seed + uint64(n),
		})
		points = append(points, ScalePoint{
			Nodes: n, Groups: g,
			Throughput: r.Throughput,
			Speedup:    r.Throughput / base.Throughput,
			IterTime:   r.MeanIterTime(),
		})
	}
	return points
}

// FullSystemResult carries the §VI-B3 headline numbers.
type FullSystemResult struct {
	ComputeNodes, PSNodes, Groups int
	BatchPerGroup                 int
	PeakFlops, SustainedFlops     float64 // algorithmic
	ExecPeak, ExecSustained       float64 // lane-padded ("executed")
	Speedup                       float64 // vs single node at the same per-node batch
	MeanIterTime                  float64
}

func (r FullSystemResult) String() string {
	return fmt.Sprintf("%d+%d nodes, %d groups, batch %d/group: peak %.2f PF sustained %.2f PF (exec %.2f/%.2f PF), speedup %.0fx, %.0f ms/iter",
		r.ComputeNodes, r.PSNodes, r.Groups, r.BatchPerGroup,
		r.PeakFlops/1e15, r.SustainedFlops/1e15, r.ExecPeak/1e15, r.ExecSustained/1e15,
		r.Speedup, r.MeanIterTime*1e3)
}

// FullSystem reproduces the full-machine configurations of §VI-B3:
//
//	HEP:     9594 compute + 6 PS nodes, 9 groups, minibatch 1066/group;
//	Climate: 9608 compute + 14 PS nodes, 8 groups, minibatch 9608/group,
//	         checkpointing every 10 iterations.
//
// Speedup is measured against a single node at the same per-node batch
// (the paper's "speedup over single node performance").
func FullSystem(m MachineSpec, p NetProfile, computeNodes, groups, batchPerGroup, iterations, checkpointEvery int, seed uint64) FullSystemResult {
	r := Simulate(m, p, RunConfig{
		Nodes: computeNodes, Groups: groups, BatchPerGroup: batchPerGroup,
		Iterations: iterations, CheckpointEvery: checkpointEvery, Seed: seed,
	})
	perNode := batchPerGroup / (computeNodes / groups)
	if perNode < 1 {
		perNode = 1
	}
	base := Simulate(m, p, RunConfig{
		Nodes: 1, Groups: 1, BatchPerGroup: perNode,
		Iterations: iterations, Seed: seed + 1,
	})
	return FullSystemResult{
		ComputeNodes:   computeNodes,
		PSNodes:        r.PSNodes,
		Groups:         groups,
		BatchPerGroup:  batchPerGroup,
		PeakFlops:      r.PeakFlopRate,
		SustainedFlops: r.SustainedFlopRate,
		ExecPeak:       r.ExecPeak,
		ExecSustained:  r.ExecSustained,
		Speedup:        r.Throughput / base.Throughput,
		MeanIterTime:   r.MeanIterTime(),
	}
}
