package cluster

import (
	"fmt"
	"math"
	"testing"

	"deep15pf/internal/obs"
)

// TestSimulatedTraceSpans: a traced run leaves one lane per group with
// the full modelled phase set, and tracing never perturbs the timeline.
func TestSimulatedTraceSpans(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	cfg := RunConfig{
		Nodes: 16, Groups: 2, BatchPerGroup: 64, Iterations: 6, Seed: 7,
		IngestIO: true, CheckpointEvery: 2,
	}
	base := Simulate(m, p, cfg)
	cfg.Trace = obs.NewTracer(0)
	traced := Simulate(m, p, cfg)
	if traced.WallTime != base.WallTime || traced.Throughput != base.Throughput {
		t.Fatal("tracing perturbed the simulated timeline")
	}

	snap := cfg.Trace.Snapshot()
	if len(snap) != cfg.Groups {
		t.Fatalf("got %d lanes, want %d groups", len(snap), cfg.Groups)
	}
	for g, ls := range snap {
		if want := fmt.Sprintf("g%d", g); ls.Name != want {
			t.Fatalf("lane %d named %q, want %q", g, ls.Name, want)
		}
		var counts [obs.NumPhases]int
		var fwd, bwd float64
		for _, sp := range ls.Spans {
			counts[sp.Phase]++
			if sp.Dur() < 0 {
				t.Fatalf("%s: negative span %+v", ls.Name, sp)
			}
			switch sp.Phase {
			case obs.PhaseFwd:
				fwd += sp.Seconds()
			case obs.PhaseBwd:
				bwd += sp.Seconds()
			}
		}
		iters := cfg.Iterations
		if counts[obs.PhaseFwd] != iters || counts[obs.PhaseBwd] != iters {
			t.Errorf("%s: fwd=%d bwd=%d spans, want %d each", ls.Name, counts[obs.PhaseFwd], counts[obs.PhaseBwd], iters)
		}
		if counts[obs.PhaseIngest] != iters {
			t.Errorf("%s: %d ingest spans, want %d (IngestIO on)", ls.Name, counts[obs.PhaseIngest], iters)
		}
		// CheckpointEvery=2 snapshots at iters 2 and 4 (never iter 0).
		if counts[obs.PhaseCkptStage] != 2 {
			t.Errorf("%s: %d ckpt spans, want 2", ls.Name, counts[obs.PhaseCkptStage])
		}
		if counts[obs.PhaseCommWait] == 0 {
			t.Errorf("%s: no comm-wait spans — the hybrid PS exchange must extend iterations", ls.Name)
		}
		// The Fwd/Bwd split mirrors the profile's share of compute.
		if fwd <= 0 || bwd <= 0 {
			t.Fatalf("%s: empty compute spans", ls.Name)
		}
		// 1e-6 tolerance: span endpoints are quantised to whole ns.
		if got := fwd / (fwd + bwd); math.Abs(got-p.FwdShare) > 1e-6 {
			t.Errorf("%s: forward share %.4f, want %.4f", ls.Name, got, p.FwdShare)
		}
	}
}

// TestSimulatedStragglerSkewPinned: the straggler report over the DES
// model's spans is a pure function of the seed — pin it. A slowed node
// in group 0 must dominate the skew while it drags the group barrier.
func TestSimulatedStragglerSkewPinned(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	tr := obs.NewTracer(0)
	Simulate(m, p, RunConfig{
		Nodes: 16, Groups: 2, BatchPerGroup: 64, Iterations: 8, Seed: 7,
		Trace:   tr,
		Failure: &FailureSpec{Group: 0, StartIter: 3, Duration: 2, Slowdown: 3},
	})
	rep := obs.Stragglers(tr.Snapshot())
	if len(rep.Iters) != 8 {
		t.Fatalf("report covers %d iters, want 8", len(rep.Iters))
	}
	for _, it := range rep.Iters {
		if it.Lanes != 2 {
			t.Fatalf("iter %d saw %d lanes, want 2", it.Iter, it.Lanes)
		}
	}
	// The slowdown triples group 0's compute for iters 3-4, so the worst
	// skew lands there and dwarfs the jitter-only iterations.
	if rep.WorstIter != 3 && rep.WorstIter != 4 {
		t.Errorf("worst iter = %d, want the slowed window (3 or 4)", rep.WorstIter)
	}
	jitterOnly := rep.Iters[0].Skew
	if rep.MaxSkew < 10*jitterOnly {
		t.Errorf("slowed skew %.4g not dominant over jitter skew %.4g", rep.MaxSkew, jitterOnly)
	}
	// Determinism pin: same seed, same report, bit for bit.
	tr2 := obs.NewTracer(0)
	Simulate(m, p, RunConfig{
		Nodes: 16, Groups: 2, BatchPerGroup: 64, Iterations: 8, Seed: 7,
		Trace:   tr2,
		Failure: &FailureSpec{Group: 0, StartIter: 3, Duration: 2, Slowdown: 3},
	})
	rep2 := obs.Stragglers(tr2.Snapshot())
	if rep.MaxSkew != rep2.MaxSkew || rep.MeanSkew != rep2.MeanSkew || rep.WorstIter != rep2.WorstIter {
		t.Fatalf("straggler report not deterministic: %+v vs %+v", rep, rep2)
	}
}
