package cluster

import (
	"math"
	"testing"
)

// TestIngestModelOffIsBitwiseNeutral: with IngestIO off (the default for
// every existing caller) the model must reproduce the pre-ingest timeline
// draw for draw — the read time is deterministic, so the jitter RNG stream
// is untouched either way.
func TestIngestModelOffIsBitwiseNeutral(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	cfg := RunConfig{Nodes: 16, Groups: 2, BatchPerGroup: 64, Iterations: 5, Seed: 9}
	a := Simulate(m, p, cfg)
	p2 := HEPProfile()
	p2.SampleBytes, p2.ReadEff = 0, 0 // profile without ingest calibration
	b := Simulate(m, p2, cfg)
	if a.WallTime != b.WallTime {
		t.Fatalf("ingest-capable profile changed the timeline with IngestIO off: %v vs %v",
			a.WallTime, b.WallTime)
	}
	if a.IOSeconds != 0 || a.ExposedIOSeconds != 0 {
		t.Fatalf("IngestIO off must account zero I/O, got %v/%v", a.IOSeconds, a.ExposedIOSeconds)
	}
}

// TestPrefetchIngestHidesIO is the timing-model half of the Fig 5 ingest
// A/B: same run, blocking reader vs double-buffered prefetch. The read work
// (IOSeconds) must be identical; the exposed part must shrink — to zero
// when compute covers the read — and the wall clock with it.
func TestPrefetchIngestHidesIO(t *testing.T) {
	m := CoriPhaseII()
	for _, p := range []NetProfile{HEPProfile(), ClimateProfile()} {
		blocking := RunConfig{Nodes: 8, Groups: 1, BatchPerGroup: 64, Iterations: 6, Seed: 3, IngestIO: true}
		prefetch := blocking
		prefetch.PrefetchIngest = true

		b := Simulate(m, p, blocking)
		f := Simulate(m, p, prefetch)

		if b.IOSeconds <= 0 {
			t.Fatalf("%s: blocking run modelled no read work", p.Name)
		}
		if math.Abs(b.IOSeconds-f.IOSeconds) > 1e-12 {
			t.Fatalf("%s: prefetch changed the read work: %v vs %v", p.Name, f.IOSeconds, b.IOSeconds)
		}
		if b.ExposedIOSeconds != b.IOSeconds {
			t.Fatalf("%s: blocking reader must expose all its I/O: %v of %v",
				p.Name, b.ExposedIOSeconds, b.IOSeconds)
		}
		// At batch 8/node the read fits inside the compute phase for both
		// networks, so the double buffer hides everything except iteration
		// 0's warmup stage — the first Next has no compute to hide behind.
		warmup := f.IOSeconds / float64(blocking.Iterations)
		if math.Abs(f.ExposedIOSeconds-warmup) > 1e-12 {
			t.Fatalf("%s: prefetch exposed %v s of I/O, want exactly the %v s warmup read",
				p.Name, f.ExposedIOSeconds, warmup)
		}
		if f.WallTime >= b.WallTime {
			t.Fatalf("%s: prefetch did not shorten the run: %v vs %v", p.Name, f.WallTime, b.WallTime)
		}
	}
}

// TestIngestSharesMatchFig5 pins the calibration the profiles advertise:
// the blocking I/O share of a single-node batch-8 iteration must land near
// the paper's measured Fig 5 breakdown — ≈2% for HEP, ≈13% for climate.
func TestIngestSharesMatchFig5(t *testing.T) {
	m := CoriPhaseII()
	cases := []struct {
		p        NetProfile
		lo, hi   float64
		paperPct float64
	}{
		{HEPProfile(), 0.01, 0.04, 2},
		{ClimateProfile(), 0.10, 0.16, 13},
	}
	for _, tc := range cases {
		compute := tc.p.ComputeTime(m, 8)
		read := tc.p.ReadTime(m, 8)
		share := read / (read + compute)
		if share < tc.lo || share > tc.hi {
			t.Errorf("%s: blocking I/O share %.1f%% outside [%.0f%%, %.0f%%] (paper: ≈%.0f%%)",
				tc.p.Name, 100*share, 100*tc.lo, 100*tc.hi, tc.paperPct)
		}
	}
}

// TestIngestUnderOverlapStillExposesReads: composing PrefetchIngest with
// the PR 3 comm overlap must keep both accountings coherent — exposed I/O
// cannot exceed total I/O, exposed comm cannot exceed total comm, and a
// fully hidden ingest phase leaves the overlap speedup intact.
func TestIngestUnderOverlapStillExposesReads(t *testing.T) {
	m := CoriPhaseII()
	p := ClimateProfile()
	cfg := RunConfig{Nodes: 16, Groups: 2, BatchPerGroup: 128, Iterations: 5, Seed: 11,
		IngestIO: true, PrefetchIngest: true, Overlap: true}
	r := Simulate(m, p, cfg)
	if r.ExposedIOSeconds > r.IOSeconds {
		t.Fatalf("exposed I/O %v exceeds total %v", r.ExposedIOSeconds, r.IOSeconds)
	}
	if r.ExposedCommSeconds > r.CommSeconds {
		t.Fatalf("exposed comm %v exceeds total %v", r.ExposedCommSeconds, r.CommSeconds)
	}
	if r.WallTime <= 0 || r.Throughput <= 0 {
		t.Fatalf("degenerate run: %+v", r)
	}
}
