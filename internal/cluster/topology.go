package cluster

import (
	"fmt"

	"deep15pf/internal/tensor"
)

// Topology models the paper's Fig 3: Cori's Aries dragonfly network is
// organised into *electrical groups* (pairs of cabinets with all-to-all
// electrical links; optical links between groups). The paper's "ideal
// placement" puts each compute group inside as few electrical groups as
// possible, so intra-group allreduce traffic stays on the cheap electrical
// network, and parameter servers sit near their groups.
type Topology struct {
	ElectricalGroups int // electrical groups in the machine
	NodesPerGroup    int // nodes per electrical group
	// InterGroupPenalty multiplies hop latency for collectives whose
	// members span multiple electrical groups (optical hops + global-link
	// contention).
	InterGroupPenalty float64
}

// CoriTopology returns the Cori Phase II layout: 9688 KNL nodes across
// ~68 electrical groups (two-cabinet groups of ~384 nodes, §IV's dragonfly).
func CoriTopology() Topology {
	return Topology{
		ElectricalGroups:  26,
		NodesPerGroup:     384,
		InterGroupPenalty: 1.8,
	}
}

// TotalNodes returns the machine capacity.
func (t Topology) TotalNodes() int { return t.ElectricalGroups * t.NodesPerGroup }

// Placement assigns each compute group a set of electrical groups.
type Placement struct {
	// SpanOf[g] is the number of electrical groups compute group g
	// touches; 1 is ideal.
	SpanOf []int
}

// LatencyFactor returns the hop-latency multiplier for compute group g
// under this placement: 1.0 when the group fits inside one electrical
// group, growing with the number of optical-domain crossings.
func (p Placement) LatencyFactor(g int, t Topology) float64 {
	span := p.SpanOf[g]
	if span <= 1 {
		return 1
	}
	// Each extra electrical group adds a fraction of the full penalty:
	// traffic on the tree crosses optical links in proportion to how much
	// of the group lives remotely.
	frac := float64(span-1) / float64(span)
	return 1 + (t.InterGroupPenalty-1)*frac
}

// MeanLatencyFactor averages the factor over compute groups.
func (p Placement) MeanLatencyFactor(t Topology) float64 {
	if len(p.SpanOf) == 0 {
		return 1
	}
	var sum float64
	for g := range p.SpanOf {
		sum += p.LatencyFactor(g, t)
	}
	return sum / float64(len(p.SpanOf))
}

// PlaceAligned packs compute groups into contiguous electrical groups —
// the paper's Fig 3 placement. Compute groups smaller than an electrical
// group share one; larger ones span ceil(size/NodesPerGroup).
func (t Topology) PlaceAligned(computeGroups, nodesPerComputeGroup int) (Placement, error) {
	if computeGroups*nodesPerComputeGroup > t.TotalNodes() {
		return Placement{}, fmt.Errorf("cluster: %d nodes requested, machine has %d",
			computeGroups*nodesPerComputeGroup, t.TotalNodes())
	}
	p := Placement{SpanOf: make([]int, computeGroups)}
	span := (nodesPerComputeGroup + t.NodesPerGroup - 1) / t.NodesPerGroup
	for g := range p.SpanOf {
		p.SpanOf[g] = span
	}
	return p, nil
}

// PlaceScattered assigns nodes to compute groups uniformly at random
// across the machine — the placement a batch scheduler produces without
// topology awareness. Each compute group's span is the number of distinct
// electrical groups its nodes land in.
func (t Topology) PlaceScattered(computeGroups, nodesPerComputeGroup int, rng *tensor.RNG) (Placement, error) {
	total := computeGroups * nodesPerComputeGroup
	if total > t.TotalNodes() {
		return Placement{}, fmt.Errorf("cluster: %d nodes requested, machine has %d", total, t.TotalNodes())
	}
	// Sample node slots without replacement via a partial shuffle.
	slots := rng.Perm(t.TotalNodes())[:total]
	p := Placement{SpanOf: make([]int, computeGroups)}
	for g := 0; g < computeGroups; g++ {
		seen := make(map[int]bool)
		for i := 0; i < nodesPerComputeGroup; i++ {
			eg := slots[g*nodesPerComputeGroup+i] / t.NodesPerGroup
			seen[eg] = true
		}
		p.SpanOf[g] = len(seen)
	}
	return p, nil
}

// WithPlacement returns a machine spec whose hop latency reflects the
// mean placement quality — the knob Fig 3's topological placement turns.
func (m MachineSpec) WithPlacement(p Placement, t Topology) MachineSpec {
	out := m
	out.HopLatency = m.HopLatency * p.MeanLatencyFactor(t)
	return out
}
