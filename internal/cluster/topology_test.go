package cluster

import (
	"testing"

	"deep15pf/internal/tensor"
)

func TestCoriTopologyCapacity(t *testing.T) {
	topo := CoriTopology()
	// §IV: 9688 compute nodes; the electrical-group layout must cover it.
	if topo.TotalNodes() < 9688 {
		t.Fatalf("topology holds %d nodes, Cori has 9688", topo.TotalNodes())
	}
}

func TestAlignedPlacementIsIdeal(t *testing.T) {
	topo := CoriTopology()
	// Compute groups that fit an electrical group have span 1 → factor 1.
	p, err := topo.PlaceAligned(9, 384)
	if err != nil {
		t.Fatal(err)
	}
	if f := p.MeanLatencyFactor(topo); f != 1 {
		t.Fatalf("aligned small groups factor = %v, want 1", f)
	}
	// A 1066-node compute group (the HEP full-system shape) spans 3
	// electrical groups of 384.
	p2, err := topo.PlaceAligned(9, 1066)
	if err != nil {
		t.Fatal(err)
	}
	if p2.SpanOf[0] != 3 {
		t.Fatalf("1066-node group span = %d, want 3", p2.SpanOf[0])
	}
	if f := p2.MeanLatencyFactor(topo); f <= 1 || f > topo.InterGroupPenalty {
		t.Fatalf("factor %v out of (1, penalty]", f)
	}
}

func TestScatteredPlacementWorseThanAligned(t *testing.T) {
	topo := CoriTopology()
	rng := tensor.NewRNG(1)
	aligned, err := topo.PlaceAligned(8, 256)
	if err != nil {
		t.Fatal(err)
	}
	scattered, err := topo.PlaceScattered(8, 256, rng)
	if err != nil {
		t.Fatal(err)
	}
	fa := aligned.MeanLatencyFactor(topo)
	fs := scattered.MeanLatencyFactor(topo)
	if fs <= fa {
		t.Fatalf("scattered placement should cost more: %v vs %v", fs, fa)
	}
	// 256 random nodes over 26 electrical groups touch nearly all of them.
	if scattered.SpanOf[0] < 10 {
		t.Fatalf("scattered span suspiciously small: %d", scattered.SpanOf[0])
	}
}

func TestPlacementCapacityValidation(t *testing.T) {
	topo := CoriTopology()
	if _, err := topo.PlaceAligned(100, 1000); err == nil {
		t.Fatal("oversubscription must error")
	}
	if _, err := topo.PlaceScattered(100, 1000, tensor.NewRNG(2)); err == nil {
		t.Fatal("oversubscription must error")
	}
}

func TestWithPlacementSlowsCollectives(t *testing.T) {
	// The Fig 3 claim, end to end: the same training run with scattered
	// placement is slower than with aligned placement, because every
	// allreduce tree step pays optical-domain latency.
	topo := CoriTopology()
	rng := tensor.NewRNG(3)
	aligned, _ := topo.PlaceAligned(1, 1024)
	scattered, _ := topo.PlaceScattered(1, 1024, rng)

	base := CoriPhaseII()
	p := HEPProfile()
	cfg := RunConfig{Nodes: 1024, Groups: 1, BatchPerGroup: 8192, Iterations: 10, Seed: 7}
	ra := Simulate(base.WithPlacement(aligned, topo), p, cfg)
	rs := Simulate(base.WithPlacement(scattered, topo), p, cfg)
	if rs.Throughput >= ra.Throughput {
		t.Fatalf("scattered placement should reduce throughput: %v vs %v", rs.Throughput, ra.Throughput)
	}
}

func TestLatencyFactorBounds(t *testing.T) {
	topo := CoriTopology()
	p := Placement{SpanOf: []int{1, 2, 26}}
	if p.LatencyFactor(0, topo) != 1 {
		t.Fatal("span 1 must be free")
	}
	f2 := p.LatencyFactor(1, topo)
	f26 := p.LatencyFactor(2, topo)
	if !(f2 > 1 && f26 > f2 && f26 <= topo.InterGroupPenalty) {
		t.Fatalf("factors out of order: %v %v", f2, f26)
	}
	empty := Placement{}
	if empty.MeanLatencyFactor(topo) != 1 {
		t.Fatal("empty placement must be neutral")
	}
}
