package cluster

import (
	"math"
	"testing"
)

// TestAsyncCheckpointNeutralWhenDisabled: with CheckpointEvery == 0 the
// AsyncCheckpoint flag must be a pure no-op, draw for draw.
func TestAsyncCheckpointNeutralWhenDisabled(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	base := RunConfig{Nodes: 64, Groups: 1, BatchPerGroup: 256, Iterations: 12, Seed: 5}
	a := Simulate(m, p, base)
	async := base
	async.AsyncCheckpoint = true
	b := Simulate(m, p, async)
	if a.WallTime != b.WallTime {
		t.Fatalf("AsyncCheckpoint without checkpointing changed wall time: %v vs %v", a.WallTime, b.WallTime)
	}
	if b.CkptSeconds != 0 || b.ExposedCkptSeconds != 0 {
		t.Fatalf("no snapshots, but checkpoint accounting %v/%v", b.CkptSeconds, b.ExposedCkptSeconds)
	}
}

// TestAsyncCheckpointHidesWriteBehindCompute: same run, same seed, 1-in-10
// snapshots (the paper's climate cadence): the async writer performs the
// same write work but exposes only the compute-outlasting remainder, so
// wall time can only shrink.
func TestAsyncCheckpointHidesWriteBehindCompute(t *testing.T) {
	m := CoriPhaseII()
	p := ClimateProfile()
	base := RunConfig{Nodes: 64, Groups: 1, BatchPerGroup: 256, Iterations: 21, Seed: 5,
		CheckpointEvery: 10}
	sync := Simulate(m, p, base)
	async := base
	async.AsyncCheckpoint = true
	over := Simulate(m, p, async)

	if sync.CkptSeconds <= 0 {
		t.Fatal("checkpointing run booked no snapshot work")
	}
	if math.Abs(sync.CkptSeconds-over.CkptSeconds) > 1e-12 {
		t.Fatalf("async changed the write work: %v vs %v", over.CkptSeconds, sync.CkptSeconds)
	}
	if sync.ExposedCkptSeconds != sync.CkptSeconds {
		t.Fatalf("sync writer must expose every write second: %v of %v", sync.ExposedCkptSeconds, sync.CkptSeconds)
	}
	if over.ExposedCkptSeconds >= sync.ExposedCkptSeconds {
		t.Fatalf("async exposed %v, sync %v — nothing hidden", over.ExposedCkptSeconds, sync.ExposedCkptSeconds)
	}
	if over.WallTime > sync.WallTime {
		t.Fatalf("async checkpointing slowed the run: %v vs %v", over.WallTime, sync.WallTime)
	}
	// The hidden time shows up exactly in the wall-clock delta (single
	// group, lockstep: the checkpoint term is additive per iteration).
	saved := sync.WallTime - over.WallTime
	hidden := sync.ExposedCkptSeconds - over.ExposedCkptSeconds
	if math.Abs(saved-hidden) > 1e-9 {
		t.Fatalf("wall-clock saving %v != hidden checkpoint time %v", saved, hidden)
	}
}

// TestCheckpointCadenceScalesExposure: halving the snapshot interval
// doubles the booked write work (same run length).
func TestCheckpointCadenceScalesExposure(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	base := RunConfig{Nodes: 32, Groups: 1, BatchPerGroup: 128, Iterations: 41, Seed: 9}
	every10 := base
	every10.CheckpointEvery = 10
	every5 := base
	every5.CheckpointEvery = 5
	a := Simulate(m, p, every10)
	b := Simulate(m, p, every5)
	if a.CkptSeconds <= 0 || math.Abs(b.CkptSeconds-2*a.CkptSeconds) > 1e-9 {
		t.Fatalf("cadence scaling broken: every10=%v every5=%v", a.CkptSeconds, b.CkptSeconds)
	}
}
