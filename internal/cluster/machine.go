// Package cluster is the discrete-event performance model of Cori Phase II
// that stands in for the physical machine in the paper's scaling study
// (Figs 6–8 and §VI-B3). It models the mechanisms the paper identifies as
// decisive at scale:
//
//   - single-node efficiency that falls at small per-node minibatch
//     (DeepBench, §II-A) — the reason hybrid groups with larger per-node
//     batches beat the fully synchronous configuration in strong scaling;
//   - compute jitter whose max-over-N straggler effect grows with the
//     synchronisation domain (§II-B1b, §VIII-A);
//   - per-hop message latency jitter that dominates for HEP's ~12 ms
//     conv layers but is negligible for climate's ~300 ms layers (§VI-B2);
//   - per-layer parameter servers modelled as FIFO queues, so PS
//     saturation under many groups is observable (§III-E);
//   - checkpoint overhead folded into sustained throughput (§VI-B3).
package cluster

import (
	"math"

	"deep15pf/internal/tensor"
)

// MachineSpec describes one node type plus interconnect characteristics.
type MachineSpec struct {
	Name string

	// Node compute (per §IV): cores used for compute, AVX clock, single-
	// precision flops per cycle per core.
	Cores         int
	ClockGHz      float64 // nominal clock (peak arithmetic)
	AVXClockGHz   float64 // sustained AVX clock
	FlopsPerCycle int

	// Interconnect (Aries dragonfly abstraction).
	HopLatency    float64 // base per-tree-step latency, seconds
	Bandwidth     float64 // per-node injection bandwidth, bytes/second
	PSHopLatency  float64 // root-worker↔PS one-way base latency, seconds
	PSBandwidth   float64 // PS link bandwidth, bytes/second
	PSOverhead    float64 // fixed per-request PS occupancy (software stack)
	ComputeJitter float64 // lognormal sigma of per-node per-iteration compute
	MsgJitter     float64 // lognormal sigma of per-hop message latency

	// EndpointFactor models MLSL's proxy-thread endpoints (§III-D): the
	// effective bandwidth multiplier they provide. Setting it to 1.0
	// disables the optimisation (ablation); the default reflects the
	// better network utilisation the paper attributes to endpoints.
	EndpointFactor float64

	// Checkpointing (sustained-rate overhead, §VI-B3).
	CheckpointBandwidth float64 // bytes/second to the filesystem

	// ReadBandwidth is the per-node input-read bandwidth from the parallel
	// filesystem (the paper's non-threaded HDF5 path, §VI-A). Used only
	// when a run models ingest (RunConfig.IngestBytesPerSample > 0).
	ReadBandwidth float64 // bytes/second per node
}

// CoriPhaseII returns the calibrated model of a Cori Phase II KNL node
// (§IV): 68-core Xeon Phi 7250, of which 66 run compute; AVX-sustained
// clock 1.2 GHz; 64 single-precision flops/cycle; Aries interconnect.
func CoriPhaseII() MachineSpec {
	return MachineSpec{
		Name:          "cori-phase-ii",
		Cores:         66, // 2 of 68 reserved for the OS (§V)
		ClockGHz:      1.4,
		AVXClockGHz:   1.2,
		FlopsPerCycle: 64,

		HopLatency:    20e-6,
		Bandwidth:     12.5e9, // ~Aries injection bandwidth
		PSHopLatency:  6e-3,   // endpoint + software stack on the PS path
		PSBandwidth:   10e9,
		PSOverhead:    1.5e-3,
		ComputeJitter: 0.04,
		MsgJitter:     0.55,

		EndpointFactor:      1.5,
		CheckpointBandwidth: 1e9,
		ReadBandwidth:       4e9, // per-node Lustre read peak; see NetProfile.ReadEff
	}
}

// PeakFlops returns the per-node peak at nominal clock (the paper's 59
// PF/9688 nodes accounting).
func (m MachineSpec) PeakFlops() float64 {
	return float64(m.Cores) * m.ClockGHz * 1e9 * float64(m.FlopsPerCycle)
}

// SustainedPeakFlops returns the per-node peak at the AVX clock (the
// paper's 50.6 PF machine-wide sustained peak divided by node count).
func (m MachineSpec) SustainedPeakFlops() float64 {
	return float64(m.Cores) * m.AVXClockGHz * 1e9 * float64(m.FlopsPerCycle)
}

// EffCurve is a saturating batch-size→efficiency curve
//
//	eff(b) = Max / (1 + (Knee/b)^Pow)
//
// calibrated per network against the paper's single-node measurements
// (Fig 5) and the strong-scaling saturation points (Fig 6). The sharp
// small-batch knee is the DeepBench effect: GEMM N-dimension collapse.
type EffCurve struct {
	Max, Knee, Pow float64
}

// At evaluates the curve at per-node minibatch b (fractional batches from
// uneven shards are legal).
func (e EffCurve) At(b float64) float64 {
	if b <= 0 {
		return 0
	}
	return e.Max / (1 + math.Pow(e.Knee/b, e.Pow))
}

// maxLogNormal draws the maximum of n lognormal(0, sigma) multipliers —
// the straggler factor for a synchronisation domain of n nodes — in O(1)
// via the inverse-CDF identity max(X₁…Xₙ) ~ F⁻¹(U^(1/n)). Clamped below
// at 1 so jitter can only slow iterations (the barrier waits for the
// slowest node; nodes finishing early do not help).
func maxLogNormal(rng *tensor.RNG, n int, sigma float64) float64 {
	if sigma <= 0 || n <= 0 {
		return 1
	}
	u := rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	q := math.Pow(u, 1/float64(n))
	v := math.Exp(sigma * Probit(q))
	if v < 1 {
		return 1
	}
	return v
}

// hopTime draws one allreduce tree-step time for a synchronisation domain
// of n nodes: base latency times the max jitter over the concurrent
// pairwise exchanges of that step.
func (m MachineSpec) hopTime(rng *tensor.RNG, n int) float64 {
	pairs := n / 2
	if pairs < 1 {
		pairs = 1
	}
	return m.HopLatency * maxLogNormal(rng, pairs, m.MsgJitter)
}

// AllReduceTime draws the duration of one allreduce of msgBytes over n
// nodes: a recursive-halving/doubling tree (2·log2 n steps of latency,
// each inflated by the max jitter over its concurrent exchanges) plus the
// classic 2·(n−1)/n bandwidth term, boosted by MLSL endpoints.
func (m MachineSpec) AllReduceTime(rng *tensor.RNG, n int, msgBytes int64) float64 {
	if n <= 1 {
		return 0
	}
	steps := 2 * int(math.Ceil(math.Log2(float64(n))))
	var latency float64
	for i := 0; i < steps; i++ {
		latency += m.hopTime(rng, n)
	}
	bw := m.Bandwidth * m.EndpointFactor
	transfer := 2 * float64(n-1) / float64(n) * float64(msgBytes) / bw
	return latency + transfer
}

// PSLatency draws one root↔PS one-way message latency. The heavier jitter
// on this path (software endpoints, no dedicated collective hardware) is
// what makes hybrid weak scaling trail synchronous for HEP's small, fast
// layers (§VI-B2: the "two additional communication steps … are more
// affected by this variability").
func (m MachineSpec) PSLatency(rng *tensor.RNG) float64 {
	return m.PSHopLatency * rng.LogNormal(0, 0.6)
}

// PSServiceTime returns the parameter server's service time for one layer
// update: fixed software overhead, receive the gradient, apply the solver,
// send the fresh model. A PS serving every layer of every group accumulates
// these serially — the saturation §III-E's per-layer sharding avoids.
func (m MachineSpec) PSServiceTime(layerBytes int64) float64 {
	return m.PSServiceTimeAsym(layerBytes, layerBytes)
}

// PSServiceTimeAsym is PSServiceTime with distinct inbound and outbound
// payload sizes — the codec-compressed wire pushes a small gradient up but
// still pulls the full fp32 model down. The solver-apply term follows the
// model size (the update is memory-bound on the master copy).
func (m MachineSpec) PSServiceTimeAsym(inBytes, outBytes int64) float64 {
	transfer := float64(inBytes+outBytes) / (m.PSBandwidth * m.EndpointFactor)
	apply := float64(outBytes) / (m.PSBandwidth * 2) // memory-bound update
	return m.PSOverhead + transfer + apply
}

// BroadcastTime draws the root-to-group model broadcast after a PS
// exchange (tree of log2 n hops plus one bandwidth term).
func (m MachineSpec) BroadcastTime(rng *tensor.RNG, n int, msgBytes int64) float64 {
	if n <= 1 {
		return 0
	}
	steps := int(math.Ceil(math.Log2(float64(n))))
	var latency float64
	for i := 0; i < steps; i++ {
		latency += m.hopTime(rng, n)
	}
	return latency + float64(msgBytes)/(m.Bandwidth*m.EndpointFactor)
}
