package cluster

import (
	"fmt"
	"math"

	"deep15pf/internal/comm"
	"deep15pf/internal/obs"
	"deep15pf/internal/perf"
	"deep15pf/internal/sim"
	"deep15pf/internal/tensor"
)

// RunConfig describes one simulated training run.
type RunConfig struct {
	Nodes         int // compute nodes (parameter servers are extra)
	Groups        int // 1 = fully synchronous (no PS involved)
	BatchPerGroup int // samples per group per iteration
	Iterations    int // iterations per group
	Seed          uint64

	// Overlap pipelines per-layer gradient communication with the backward
	// pass (§III-D/E): layer l's allreduce starts when its gradients are
	// ready (NetProfile.LayerBwdFracs), serialized over the injection
	// channel, and its PS exchange follows immediately — instead of the
	// lockstep schedule where all communication waits for the full
	// backward. Lockstep with the fp32 codec reproduces the legacy model
	// draw for draw.
	Overlap bool
	// Codec shrinks the PS gradient push ("int8" ≈ 4x smaller wire, per
	// comm.Codec accounting); the model pull stays fp32. ""/"fp32" is
	// identity. Intra-group allreduce always stays fp32, as in core.
	Codec string

	// IngestIO models the input pipeline (§VI-A): every iteration each node
	// reads its batch share from the filesystem through the single-threaded
	// reader (NetProfile.SampleBytes at NetProfile.ReadEff of the machine's
	// ReadBandwidth). Off — the default — reproduces the pre-ingest model
	// draw for draw; the read time is deterministic, so turning it on never
	// perturbs the jitter RNG stream either.
	IngestIO bool
	// PrefetchIngest double-buffers the modelled reads: iteration k+1's
	// batch is staged while iteration k computes, so only the part of the
	// read that outlasts the compute phase stays on the critical path —
	// the timing-model analogue of core.Config.Prefetch, and the knob the
	// Fig 5 ingest A/B flips.
	PrefetchIngest bool

	// SinglePS shares one parameter server across all layers (the
	// ablation for §III-E's per-layer PS design). Default false =
	// one dedicated PS per trainable layer, as in the paper.
	SinglePS bool

	// CheckpointEvery adds a model snapshot to disk every k iterations
	// (the paper's sustained numbers include this overhead; they
	// checkpointed once in 10 iterations for climate).
	CheckpointEvery int
	// AsyncCheckpoint stages the snapshot at the iteration boundary and
	// flushes it behind the iteration's compute (the internal/ckpt
	// background writer): only the write time that outlasts the compute
	// phase stays on the critical path — the output-I/O analogue of
	// PrefetchIngest, and deterministically neutral when off.
	AsyncCheckpoint bool

	// Failure optionally degrades one node mid-run (§VIII-A).
	Failure *FailureSpec

	// Trace, when non-nil, receives the modelled timeline as phase spans:
	// one lane per group ("g<k>"), each iteration leaving Ingest (exposed
	// read), Fwd/Bwd (compute split by NetProfile.FwdShare), CkptStage
	// (exposed snapshot write) and CommWait (whatever extended the
	// iteration past its compute floor) spans with simulated-seconds
	// timestamps (1 sim second = 1e9 ns). The emission is a pure function
	// of the run's deterministic timeline — same seed, same spans — which
	// is what lets the harness pin straggler-skew reports in tests.
	Trace *obs.Tracer
}

// FailureSpec injects a straggling or dead node.
type FailureSpec struct {
	Group     int     // group owning the failing node
	StartIter int     // group-local iteration when degradation starts
	Duration  int     // iterations affected (ignored when Dead)
	Slowdown  float64 // compute multiplier for that node's work
	Dead      bool    // node never completes: the group halts
}

// RunResult captures a simulated run.
type RunResult struct {
	Config        RunConfig
	WallTime      float64     // completion time of the last finished iteration
	TotalImages   int64       // samples processed machine-wide
	IterDurations [][]float64 // per group, per completed iteration
	Throughput    float64     // images/second machine-wide
	FlopRate      float64     // mean algorithmic flop/s machine-wide
	ExecFlopRate  float64     // mean executed (lane-padded) flop/s

	// §V methodology numbers (aggregated across concurrent groups).
	PeakFlopRate      float64
	SustainedFlopRate float64
	ExecPeak          float64
	ExecSustained     float64

	PSNodes          int
	PSMaxUtilization float64
	Halted           bool // a dead node stopped one or more groups

	// Communication accounting for the overlap/codec A/B: CommSeconds is
	// the total communication work performed (allreduce walltime plus PS
	// round trips, summed over layers, iterations and groups);
	// ExposedCommSeconds is the part that actually extended iterations
	// beyond compute + checkpoint — the overlap target is driving it to
	// zero while CommSeconds stays put.
	CommSeconds        float64
	ExposedCommSeconds float64

	// Input-I/O accounting, the ingest analogue of the comm split (active
	// with IngestIO): IOSeconds is the read work performed per group
	// iteration summed over the run; ExposedIOSeconds is the part left on
	// the critical path — all of it for the blocking reader, only the
	// compute-outlasting remainder with PrefetchIngest.
	IOSeconds        float64
	ExposedIOSeconds float64

	// Checkpoint accounting, the output-I/O split (active with
	// CheckpointEvery): CkptSeconds is the snapshot write work performed;
	// ExposedCkptSeconds is the part on the critical path — all of it for
	// the synchronous writer, only the compute-outlasting remainder with
	// AsyncCheckpoint (the paper's 1-in-10 snapshot, overlap-hidden).
	CkptSeconds        float64
	ExposedCkptSeconds float64
}

// Simulate runs the discrete-event model of one training run.
func Simulate(m MachineSpec, p NetProfile, cfg RunConfig) RunResult {
	if cfg.Groups < 1 || cfg.Nodes < cfg.Groups {
		panic(fmt.Sprintf("cluster: invalid config nodes=%d groups=%d", cfg.Nodes, cfg.Groups))
	}
	if cfg.BatchPerGroup < 1 || cfg.Iterations < 1 {
		panic("cluster: batch and iterations must be positive")
	}
	s := sim.New()
	rng := tensor.NewRNG(cfg.Seed + 0x5EED)

	// Parameter servers: one resource per trainable layer (or a single
	// shared one for the ablation). Only used when Groups > 1.
	var psRes []*sim.Resource
	psNodes := 0
	if cfg.Groups > 1 {
		if cfg.SinglePS {
			shared := sim.NewResource(s, "ps")
			for range p.LayerBytes {
				psRes = append(psRes, shared)
			}
			psNodes = 1
		} else {
			for l := range p.LayerBytes {
				psRes = append(psRes, sim.NewResource(s, fmt.Sprintf("ps-layer%d", l)))
			}
			psNodes = len(p.LayerBytes)
		}
	}

	groupNodes := cfg.Nodes / cfg.Groups
	batchPerNode := float64(cfg.BatchPerGroup) / float64(groupNodes)
	baseCompute := p.ComputeTime(m, batchPerNode)
	ioTime := 0.0
	if cfg.IngestIO {
		ioTime = p.ReadTime(m, batchPerNode)
	}

	// Gradient-push wire size per layer through the run's codec (the model
	// pull stays fp32, handled by PSServiceTimeAsym).
	codec, err := comm.NewCodec(cfg.Codec, cfg.Seed)
	if err != nil {
		panic("cluster: " + err.Error())
	}
	gradWire := make([]int64, len(p.LayerBytes))
	for l, bytes := range p.LayerBytes {
		gradWire[l] = codec.WireBytes(int(bytes / 4))
	}

	durations := make([][]float64, cfg.Groups)
	lanes := make([]*obs.Lane, cfg.Groups)
	for g := range lanes {
		lanes[g] = cfg.Trace.Lane(fmt.Sprintf("g%d", g)) // nil tracer → nil lanes
	}
	// simNs maps the model's simulated seconds onto the tracer's
	// nanosecond span clock.
	simNs := func(t float64) int64 { return int64(t * 1e9) }
	halted := false
	var commSeconds, exposedSeconds float64
	var ioSeconds, exposedIOSeconds float64
	var ckptSeconds, exposedCkptSeconds float64

	// Each group is an independent chain of events; PS resources couple
	// them through FIFO queueing. computePlusCkpt is the iteration's
	// non-communication floor, used to expose the comm on the critical path.
	var startIter func(g, iter int, tStart float64)
	finishIter := func(g, iter int, tStart, computePlusCkpt float64) {
		end := s.Now()
		durations[g] = append(durations[g], end-tStart)
		if over := (end - tStart) - computePlusCkpt; over > 0 {
			exposedSeconds += over
			// The stretch past the compute floor is the modelled comm on
			// the critical path — the span the real workers record while
			// blocked in await/broadcast.
			lanes[g].Record(obs.PhaseCommWait, simNs(end-over), simNs(end))
		}
		if iter+1 < cfg.Iterations {
			startIter(g, iter+1, end)
		}
	}
	startIter = func(g, iter int, tStart float64) {
		// Compute phase: the group barrier waits for the slowest node.
		compute := baseCompute * maxLogNormal(rng, groupNodes, m.ComputeJitter)
		if f := cfg.Failure; f != nil && f.Group == g && iter >= f.StartIter {
			if f.Dead {
				halted = true
				return // node never reports: group stalls forever
			}
			if iter < f.StartIter+f.Duration && f.Slowdown > 1 {
				slowed := baseCompute * f.Slowdown
				if slowed > compute {
					compute = slowed
				}
			}
		}
		// Solver/update overhead on the synchronous path is folded into
		// the compute model; checkpointing is explicit. The synchronous
		// writer puts the whole snapshot flush on the critical path; the
		// async writer (internal/ckpt's double-buffered staging) hides it
		// behind this iteration's compute, leaving only the remainder —
		// the model never perturbs the jitter RNG stream either way.
		checkpoint := 0.0
		if cfg.CheckpointEvery > 0 && iter > 0 && iter%cfg.CheckpointEvery == 0 {
			write := float64(p.TotalModelBytes) / m.CheckpointBandwidth
			ckptSeconds += write
			checkpoint = write
			if cfg.AsyncCheckpoint {
				checkpoint -= compute
				if checkpoint < 0 {
					checkpoint = 0
				}
			}
			exposedCkptSeconds += checkpoint
		}
		// Ingest phase (§VI-A): the blocking reader stages the batch before
		// the forward pass — all of ioTime sits on the critical path. With
		// PrefetchIngest the batch was staged during the previous
		// iteration's compute, so only the compute-outlasting remainder is
		// exposed (the double buffer can hide at most one compute phase) —
		// except iteration 0, whose first batch has no compute to hide
		// behind: the real pipeline's first Next always blocks for the
		// warmup stage, and so does the model.
		exposedIO := ioTime
		if cfg.PrefetchIngest && iter > 0 {
			exposedIO -= compute
			if exposedIO < 0 {
				exposedIO = 0
			}
		}
		ioSeconds += ioTime
		exposedIOSeconds += exposedIO
		floor := exposedIO + compute + checkpoint

		// Emit the iteration's modelled phase spans. The timeline is laid
		// out the way the real lockstep loop experiences it: exposed
		// ingest, then forward/backward (split by FwdShare), then the
		// exposed checkpoint stall; CommWait is recorded at finishIter
		// once the critical-path overhang is known.
		if lane := lanes[g]; lane != nil {
			lane.SetIter(iter)
			t := tStart
			if exposedIO > 0 {
				lane.Record(obs.PhaseIngest, simNs(t), simNs(t+exposedIO))
				t += exposedIO
			}
			fwd := compute * p.FwdShare
			lane.Record(obs.PhaseFwd, simNs(t), simNs(t+fwd))
			lane.Record(obs.PhaseBwd, simNs(t+fwd), simNs(t+compute))
			t += compute
			if checkpoint > 0 {
				lane.Record(obs.PhaseCkptStage, simNs(t), simNs(t+checkpoint))
			}
		}

		// Gradient allreduce per trainable layer (§III-D, MLSL), and the
		// time each layer's PS exchange may start. Lockstep: every
		// collective waits for the whole backward pass (draw-for-draw the
		// legacy model). Overlap: layer l's allreduce starts when its
		// gradients are ready — backward runs in reverse, so the deepest
		// layer leads — serialized over the injection channel, and its PS
		// push follows immediately, all in the shadow of the remaining
		// backward compute.
		nL := len(p.LayerBytes)
		psStart := make([]float64, nL)
		var arDone float64
		if cfg.Overlap {
			arFree, cum := 0.0, 0.0
			for l := nL - 1; l >= 0; l-- {
				cum += p.LayerBwdFracs[l]
				// Gradients appear only after the exposed ingest phase and
				// the layer's share of the backward pass.
				ready := exposedIO + compute*(p.FwdShare+(1-p.FwdShare)*cum)
				ar := m.AllReduceTime(rng, groupNodes, p.LayerBytes[l])
				commSeconds += ar
				if ready > arFree {
					arFree = ready
				}
				arFree += ar
				psStart[l] = arFree
			}
			arDone = arFree
		} else {
			comm := 0.0
			for _, bytes := range p.LayerBytes {
				ar := m.AllReduceTime(rng, groupNodes, bytes)
				commSeconds += ar
				comm += ar
			}
			arDone = exposedIO + compute + comm
			for l := range psStart {
				psStart[l] = arDone + checkpoint
			}
		}

		if cfg.Groups == 1 {
			end := arDone + checkpoint // lockstep: ingest + compute + comm + checkpoint
			if cfg.Overlap {
				end = arDone
				if busy := exposedIO + compute; busy > end {
					end = busy
				}
				end += checkpoint
			}
			s.Schedule(end, func() { finishIter(g, iter, tStart, floor) })
			return
		}
		// Hybrid: the group root exchanges each layer with its dedicated
		// PS (§III-E, Fig 4), then broadcasts the new model to the group.
		// Events run in time order, so the last response to arrive fires
		// the broadcast at exactly the max response time (never before the
		// backward pass and checkpoint have finished).
		pending := len(psRes)
		launch := func(l int, res *sim.Resource, sendAt float64) {
			s.Schedule(sendAt, func() {
				sendLat := m.PSLatency(rng)
				s.Schedule(sendLat, func() {
					done := res.Request(m.PSServiceTimeAsym(gradWire[l], p.LayerBytes[l]))
					retLat := m.PSLatency(rng)
					s.ScheduleAt(done, func() {
						s.Schedule(retLat, func() {
							commSeconds += s.Now() - sendAt - tStart
							pending--
							if pending == 0 {
								doBc := func() {
									bc := m.BroadcastTime(rng, groupNodes, p.TotalModelBytes)
									commSeconds += bc
									s.Schedule(bc, func() { finishIter(g, iter, tStart, floor) })
								}
								if min := tStart + floor; s.Now() < min {
									s.ScheduleAt(min, doBc) // overlap: backward still running
								} else {
									doBc()
								}
							}
						})
					})
				})
			})
		}
		for l, res := range psRes {
			launch(l, res, psStart[l])
		}
	}

	for g := 0; g < cfg.Groups; g++ {
		g := g
		s.Schedule(0, func() { startIter(g, 0, 0) })
	}
	s.Run()

	res := RunResult{
		Config: cfg, IterDurations: durations, PSNodes: psNodes, Halted: halted,
		CommSeconds: commSeconds, ExposedCommSeconds: exposedSeconds,
		IOSeconds: ioSeconds, ExposedIOSeconds: exposedIOSeconds,
		CkptSeconds: ckptSeconds, ExposedCkptSeconds: exposedCkptSeconds,
	}
	var totalIters int
	for g := range durations {
		totalIters += len(durations[g])
		// Iterations run back to back, so the group's finish time is the
		// sum of its iteration durations.
		if end := sumUpTo(durations[g]); end > res.WallTime {
			res.WallTime = end
		}
	}
	res.TotalImages = int64(totalIters) * int64(cfg.BatchPerGroup)
	if res.WallTime > 0 {
		res.Throughput = float64(res.TotalImages) / res.WallTime
		res.FlopRate = float64(res.TotalImages) * p.FlopsPerSample / res.WallTime
		res.ExecFlopRate = float64(res.TotalImages) * p.ExecPerSample / res.WallTime
	}
	// §V peak/sustained: per-group iteration rates aggregated over the
	// concurrently running groups.
	iterFlops := float64(cfg.BatchPerGroup) * p.FlopsPerSample
	iterExec := float64(cfg.BatchPerGroup) * p.ExecPerSample
	for _, d := range durations {
		if len(d) == 0 {
			continue
		}
		window := 10
		if window > len(d) {
			window = len(d)
		}
		g := float64(cfg.Groups)
		if v := perf.PeakRate(d, iterFlops) * g; v > res.PeakFlopRate {
			res.PeakFlopRate = v
		}
		if v := perf.SustainedRate(d, iterFlops, window) * g; v > res.SustainedFlopRate {
			res.SustainedFlopRate = v
		}
		if v := perf.PeakRate(d, iterExec) * g; v > res.ExecPeak {
			res.ExecPeak = v
		}
		if v := perf.SustainedRate(d, iterExec, window) * g; v > res.ExecSustained {
			res.ExecSustained = v
		}
	}
	horizon := res.WallTime
	for _, r := range psRes {
		if u := r.Utilization(horizon); u > res.PSMaxUtilization {
			res.PSMaxUtilization = u
		}
		if cfg.SinglePS {
			break // all entries alias the same resource
		}
	}
	return res
}

func sumUpTo(d []float64) float64 {
	var s float64
	for _, v := range d {
		s += v
	}
	return s
}

// MeanIterTime returns the average iteration duration across groups.
func (r RunResult) MeanIterTime() float64 {
	var sum float64
	n := 0
	for _, d := range r.IterDurations {
		for _, v := range d {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}
