package cluster

import (
	"fmt"
	"math"

	"deep15pf/internal/perf"
	"deep15pf/internal/sim"
	"deep15pf/internal/tensor"
)

// RunConfig describes one simulated training run.
type RunConfig struct {
	Nodes         int // compute nodes (parameter servers are extra)
	Groups        int // 1 = fully synchronous (no PS involved)
	BatchPerGroup int // samples per group per iteration
	Iterations    int // iterations per group
	Seed          uint64

	// SinglePS shares one parameter server across all layers (the
	// ablation for §III-E's per-layer PS design). Default false =
	// one dedicated PS per trainable layer, as in the paper.
	SinglePS bool

	// CheckpointEvery adds a model snapshot to disk every k iterations
	// (the paper's sustained numbers include this overhead; they
	// checkpointed once in 10 iterations for climate).
	CheckpointEvery int

	// Failure optionally degrades one node mid-run (§VIII-A).
	Failure *FailureSpec
}

// FailureSpec injects a straggling or dead node.
type FailureSpec struct {
	Group     int     // group owning the failing node
	StartIter int     // group-local iteration when degradation starts
	Duration  int     // iterations affected (ignored when Dead)
	Slowdown  float64 // compute multiplier for that node's work
	Dead      bool    // node never completes: the group halts
}

// RunResult captures a simulated run.
type RunResult struct {
	Config        RunConfig
	WallTime      float64     // completion time of the last finished iteration
	TotalImages   int64       // samples processed machine-wide
	IterDurations [][]float64 // per group, per completed iteration
	Throughput    float64     // images/second machine-wide
	FlopRate      float64     // mean algorithmic flop/s machine-wide
	ExecFlopRate  float64     // mean executed (lane-padded) flop/s

	// §V methodology numbers (aggregated across concurrent groups).
	PeakFlopRate      float64
	SustainedFlopRate float64
	ExecPeak          float64
	ExecSustained     float64

	PSNodes          int
	PSMaxUtilization float64
	Halted           bool // a dead node stopped one or more groups
}

// Simulate runs the discrete-event model of one training run.
func Simulate(m MachineSpec, p NetProfile, cfg RunConfig) RunResult {
	if cfg.Groups < 1 || cfg.Nodes < cfg.Groups {
		panic(fmt.Sprintf("cluster: invalid config nodes=%d groups=%d", cfg.Nodes, cfg.Groups))
	}
	if cfg.BatchPerGroup < 1 || cfg.Iterations < 1 {
		panic("cluster: batch and iterations must be positive")
	}
	s := sim.New()
	rng := tensor.NewRNG(cfg.Seed + 0x5EED)

	// Parameter servers: one resource per trainable layer (or a single
	// shared one for the ablation). Only used when Groups > 1.
	var psRes []*sim.Resource
	psNodes := 0
	if cfg.Groups > 1 {
		if cfg.SinglePS {
			shared := sim.NewResource(s, "ps")
			for range p.LayerBytes {
				psRes = append(psRes, shared)
			}
			psNodes = 1
		} else {
			for l := range p.LayerBytes {
				psRes = append(psRes, sim.NewResource(s, fmt.Sprintf("ps-layer%d", l)))
			}
			psNodes = len(p.LayerBytes)
		}
	}

	groupNodes := cfg.Nodes / cfg.Groups
	batchPerNode := float64(cfg.BatchPerGroup) / float64(groupNodes)
	baseCompute := p.ComputeTime(m, batchPerNode)

	durations := make([][]float64, cfg.Groups)
	halted := false

	// Each group is an independent chain of events; PS resources couple
	// them through FIFO queueing.
	var startIter func(g, iter int, tStart float64)
	finishIter := func(g, iter int, tStart float64) {
		end := s.Now()
		durations[g] = append(durations[g], end-tStart)
		if iter+1 < cfg.Iterations {
			startIter(g, iter+1, end)
		}
	}
	startIter = func(g, iter int, tStart float64) {
		// Compute phase: the group barrier waits for the slowest node.
		compute := baseCompute * maxLogNormal(rng, groupNodes, m.ComputeJitter)
		if f := cfg.Failure; f != nil && f.Group == g && iter >= f.StartIter {
			if f.Dead {
				halted = true
				return // node never reports: group stalls forever
			}
			if iter < f.StartIter+f.Duration && f.Slowdown > 1 {
				slowed := baseCompute * f.Slowdown
				if slowed > compute {
					compute = slowed
				}
			}
		}
		// Gradient allreduce per trainable layer (§III-D, MLSL).
		comm := 0.0
		for _, bytes := range p.LayerBytes {
			comm += m.AllReduceTime(rng, groupNodes, bytes)
		}
		// Solver/update overhead on the synchronous path is folded into
		// the compute model; checkpointing is explicit.
		checkpoint := 0.0
		if cfg.CheckpointEvery > 0 && iter > 0 && iter%cfg.CheckpointEvery == 0 {
			checkpoint = float64(p.TotalModelBytes) / m.CheckpointBandwidth
		}
		readyAt := compute + comm + checkpoint

		if cfg.Groups == 1 {
			s.Schedule(readyAt, func() { finishIter(g, iter, tStart) })
			return
		}
		// Hybrid: the group root exchanges each layer with its dedicated
		// PS (§III-E, Fig 4), then broadcasts the new model to the group.
		// Events run in time order, so the last response to arrive fires
		// the broadcast at exactly the max response time.
		s.Schedule(readyAt, func() {
			pending := len(psRes)
			for l, res := range psRes {
				l, res := l, res
				sendLat := m.PSLatency(rng)
				s.Schedule(sendLat, func() {
					done := res.Request(m.PSServiceTime(p.LayerBytes[l]))
					retLat := m.PSLatency(rng)
					s.ScheduleAt(done, func() {
						s.Schedule(retLat, func() {
							pending--
							if pending == 0 {
								bc := m.BroadcastTime(rng, groupNodes, p.TotalModelBytes)
								s.Schedule(bc, func() { finishIter(g, iter, tStart) })
							}
						})
					})
				})
			}
		})
	}

	for g := 0; g < cfg.Groups; g++ {
		g := g
		s.Schedule(0, func() { startIter(g, 0, 0) })
	}
	s.Run()

	res := RunResult{Config: cfg, IterDurations: durations, PSNodes: psNodes, Halted: halted}
	var totalIters int
	for g := range durations {
		totalIters += len(durations[g])
		// Iterations run back to back, so the group's finish time is the
		// sum of its iteration durations.
		if end := sumUpTo(durations[g]); end > res.WallTime {
			res.WallTime = end
		}
	}
	res.TotalImages = int64(totalIters) * int64(cfg.BatchPerGroup)
	if res.WallTime > 0 {
		res.Throughput = float64(res.TotalImages) / res.WallTime
		res.FlopRate = float64(res.TotalImages) * p.FlopsPerSample / res.WallTime
		res.ExecFlopRate = float64(res.TotalImages) * p.ExecPerSample / res.WallTime
	}
	// §V peak/sustained: per-group iteration rates aggregated over the
	// concurrently running groups.
	iterFlops := float64(cfg.BatchPerGroup) * p.FlopsPerSample
	iterExec := float64(cfg.BatchPerGroup) * p.ExecPerSample
	for _, d := range durations {
		if len(d) == 0 {
			continue
		}
		window := 10
		if window > len(d) {
			window = len(d)
		}
		g := float64(cfg.Groups)
		if v := perf.PeakRate(d, iterFlops) * g; v > res.PeakFlopRate {
			res.PeakFlopRate = v
		}
		if v := perf.SustainedRate(d, iterFlops, window) * g; v > res.SustainedFlopRate {
			res.SustainedFlopRate = v
		}
		if v := perf.PeakRate(d, iterExec) * g; v > res.ExecPeak {
			res.ExecPeak = v
		}
		if v := perf.SustainedRate(d, iterExec, window) * g; v > res.ExecSustained {
			res.ExecSustained = v
		}
	}
	horizon := res.WallTime
	for _, r := range psRes {
		if u := r.Utilization(horizon); u > res.PSMaxUtilization {
			res.PSMaxUtilization = u
		}
		if cfg.SinglePS {
			break // all entries alias the same resource
		}
	}
	return res
}

func sumUpTo(d []float64) float64 {
	var s float64
	for _, v := range d {
		s += v
	}
	return s
}

// MeanIterTime returns the average iteration duration across groups.
func (r RunResult) MeanIterTime() float64 {
	var sum float64
	n := 0
	for _, d := range r.IterDurations {
		for _, v := range d {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}
