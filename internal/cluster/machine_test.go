package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"deep15pf/internal/tensor"
)

func TestCoriPeakMatchesPaperSectionIV(t *testing.T) {
	m := CoriPhaseII()
	// §IV: one node at nominal clock with all 68 cores gives
	// 68·1.4 GHz·64 = 6.09 TF; machine-wide 59 PF over 9688 nodes. We run
	// 66 cores (2 reserved for the OS), so per-node nominal peak is
	// 66·1.4·64 = 5.91 TF and sustained (1.2 GHz) is 5.07 TF.
	if got := m.PeakFlops() / 1e12; math.Abs(got-5.9136) > 1e-9 {
		t.Fatalf("peak = %v TF", got)
	}
	if got := m.SustainedPeakFlops() / 1e12; math.Abs(got-5.0688) > 1e-9 {
		t.Fatalf("sustained peak = %v TF", got)
	}
	// Full-machine sustained peak with all cores ≈ 50.6 PF (paper §IV).
	allCores := m
	allCores.Cores = 68
	machine := allCores.SustainedPeakFlops() * 9688 / 1e15
	if math.Abs(machine-50.6) > 0.5 {
		t.Fatalf("machine sustained peak %.1f PF, paper says 50.6 PF", machine)
	}
}

func TestEffCurveMonotone(t *testing.T) {
	e := EffCurve{Max: 0.43, Knee: 3.71, Pow: 2.4}
	prev := 0.0
	for _, b := range []float64{0.5, 1, 2, 4, 8, 64, 4096} {
		v := e.At(b)
		if v <= prev {
			t.Fatalf("efficiency must increase with batch: eff(%v)=%v after %v", b, v, prev)
		}
		prev = v
	}
	if e.At(0) != 0 || e.At(-3) != 0 {
		t.Fatal("non-positive batch must give zero efficiency")
	}
	if e.At(1e9) > e.Max {
		t.Fatal("efficiency must saturate at Max")
	}
}

func TestSingleNodeRatesMatchFig5(t *testing.T) {
	// Fig 5 anchors: HEP 1.90 TF/s and climate 2.09 TF/s at batch 8.
	m := CoriPhaseII()
	hep := HEPProfile()
	clim := ClimateProfile()
	if got := hep.NodeFlopRate(m, 8) / 1e12; math.Abs(got-1.90) > 0.07 {
		t.Fatalf("HEP batch-8 rate %.3f TF/s, paper says 1.90", got)
	}
	if got := clim.NodeFlopRate(m, 8) / 1e12; math.Abs(got-2.09) > 0.07 {
		t.Fatalf("climate batch-8 rate %.3f TF/s, paper says 2.09", got)
	}
}

func TestProfilesDeriveFromRealNets(t *testing.T) {
	hep := HEPProfile()
	if hep.NumTrainableLayers() != 6 {
		t.Fatalf("HEP trainable layers = %d, want 6 (paper used 6 PS)", hep.NumTrainableLayers())
	}
	if mib := float64(hep.TotalModelBytes) / (1 << 20); math.Abs(mib-2.27) > 0.1 {
		t.Fatalf("HEP model %.2f MiB, Table II says 2.3", mib)
	}
	if gf := hep.FlopsPerSample / 1e9; gf < 14 || gf > 18 {
		t.Fatalf("HEP flops %.1f GF/sample", gf)
	}
	clim := ClimateProfile()
	if clim.NumTrainableLayers() != 14 {
		t.Fatalf("climate trainable layers = %d, want 14 (paper used 14 PS)", clim.NumTrainableLayers())
	}
	if mib := float64(clim.TotalModelBytes) / (1 << 20); math.Abs(mib-302.1) > 5 {
		t.Fatalf("climate model %.1f MiB, Table II says 302.1", mib)
	}
	if hep.ExecPerSample < hep.FlopsPerSample || clim.ExecPerSample < clim.FlopsPerSample {
		t.Fatal("executed flops must dominate algorithmic")
	}
}

func TestHEPConvLayerTimeMatchesPaper(t *testing.T) {
	// §VI-B2: "An average convolution layer in HEP takes about 12 ms" (at
	// the weak-scaling batch of 8/node). Our batch-8 iteration spends its
	// time across 5 conv layers plus the rest: per-conv ≈ iter/5.5.
	m := CoriPhaseII()
	hep := HEPProfile()
	iter := hep.ComputeTime(m, 8)
	perConv := iter / 5.5
	if perConv < 0.008 || perConv > 0.018 {
		t.Fatalf("per-conv time %.1f ms, paper says ~12 ms", perConv*1e3)
	}
}

func TestProbitAccuracy(t *testing.T) {
	cases := map[float64]float64{
		0.5:       0,
		0.8413447: 1, // Φ(1)
		0.9772499: 2, // Φ(2)
		0.0227501: -2,
		0.999:     3.0902,
		0.001:     -3.0902,
	}
	for p, want := range cases {
		if got := Probit(p); math.Abs(got-want) > 1e-3 {
			t.Fatalf("Probit(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsInf(Probit(0), -1) || !math.IsInf(Probit(1), 1) {
		t.Fatal("boundary behaviour")
	}
}

// Property: Probit is the inverse of the normal CDF — Φ(Probit(p)) ≈ p.
func TestProbitInverseProperty(t *testing.T) {
	phi := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	f := func(raw uint16) bool {
		p := (float64(raw) + 0.5) / 65536
		return math.Abs(phi(Probit(p))-p) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxLogNormalGrowsWithN(t *testing.T) {
	rng := tensor.NewRNG(1)
	avg := func(n int) float64 {
		var s float64
		for i := 0; i < 3000; i++ {
			s += maxLogNormal(rng, n, 0.04)
		}
		return s / 3000
	}
	a1, a256, a9600 := avg(1), avg(256), avg(9600)
	if !(a1 < a256 && a256 < a9600) {
		t.Fatalf("straggler factor must grow with domain: %v %v %v", a1, a256, a9600)
	}
	// σ=0.04 at n=9600: E[max] ≈ exp(0.04·3.7) ≈ 1.16 — the scale of the
	// paper's observed variability.
	if a9600 < 1.10 || a9600 > 1.30 {
		t.Fatalf("max straggler at 9600 nodes = %v, expected ~1.16", a9600)
	}
	if maxLogNormal(rng, 100, 0) != 1 {
		t.Fatal("zero sigma must be deterministic 1")
	}
}

func TestAllReduceTimeBehaviour(t *testing.T) {
	m := CoriPhaseII()
	rng := tensor.NewRNG(2)
	if m.AllReduceTime(rng, 1, 1<<20) != 0 {
		t.Fatal("single node needs no allreduce")
	}
	avg := func(n int, bytes int64) float64 {
		var s float64
		for i := 0; i < 200; i++ {
			s += m.AllReduceTime(rng, n, bytes)
		}
		return s / 200
	}
	small := avg(64, 600<<10)
	large := avg(2048, 600<<10)
	if large <= small {
		t.Fatalf("allreduce must slow with node count: %v vs %v", small, large)
	}
	thin := avg(256, 1<<10)
	fat := avg(256, 300<<20)
	if fat <= thin {
		t.Fatalf("allreduce must slow with message size: %v vs %v", thin, fat)
	}
	// 302 MiB over 2048 nodes is bandwidth-bound: ≥ 2·M/B ≈ 34 ms.
	if v := avg(2048, 302<<20); v < 0.030 {
		t.Fatalf("climate-model allreduce %v s unrealistically fast", v)
	}
}

func TestPSServiceTime(t *testing.T) {
	m := CoriPhaseII()
	small := m.PSServiceTime(1 << 10)
	big := m.PSServiceTime(300 << 20)
	if small >= big {
		t.Fatal("service must grow with payload")
	}
	if small < m.PSOverhead {
		t.Fatal("fixed overhead must apply")
	}
}

func TestEndpointAblationSlowsComm(t *testing.T) {
	// MLSL endpoints (§III-D) improve effective bandwidth; disabling them
	// must slow bandwidth-bound collectives.
	with := CoriPhaseII()
	without := CoriPhaseII()
	without.EndpointFactor = 1.0
	r1 := tensor.NewRNG(3)
	r2 := tensor.NewRNG(3)
	var sumWith, sumWithout float64
	for i := 0; i < 100; i++ {
		sumWith += with.AllReduceTime(r1, 512, 302<<20)
		sumWithout += without.AllReduceTime(r2, 512, 302<<20)
	}
	if sumWithout <= sumWith {
		t.Fatalf("endpoints off should be slower: %v vs %v", sumWithout, sumWith)
	}
}
