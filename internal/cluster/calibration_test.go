package cluster

import "testing"

// These tests pin the simulator to the published shapes of Figs 6–7 and
// §VI-B3. Bands are deliberately loose — the claim is "same mechanism, same
// shape", not curve matching. Iteration counts are small to keep the suite
// fast; the cmd/repro harness runs longer sweeps.

const calIters = 8

func speedupAt(points []ScalePoint, nodes int) float64 {
	for _, p := range points {
		if p.Nodes == nodes {
			return p.Speedup
		}
	}
	return -1
}

func TestFig6aHEPStrongScalingShape(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	nodes := []int{1, 256, 512, 1024}
	sync := StrongScaling(m, p, nodes, 1, 2048, calIters, 42)
	h2 := StrongScaling(m, p, nodes, 2, 2048, calIters, 42)
	h4 := StrongScaling(m, p, nodes, 4, 2048, calIters, 42)

	// "the synchronous algorithm does not scale past 256 – 1024 node
	// performance is somewhat worse than for 256" (allowing the plateau
	// to peak anywhere in 256–512).
	syncPeak := speedupAt(sync, 256)
	if s512 := speedupAt(sync, 512); s512 > syncPeak {
		syncPeak = s512
	}
	if s1024 := speedupAt(sync, 1024); s1024 >= syncPeak {
		t.Fatalf("sync must saturate: 1024 gives %.0fx vs plateau %.0fx", s1024, syncPeak)
	}
	// "scalability improves moderately for 2 hybrid groups, which
	// saturates at 280x beyond 512".
	h2at1024 := speedupAt(h2, 1024)
	if h2at1024 < 200 || h2at1024 > 420 {
		t.Fatalf("hybrid-2 @1024 = %.0fx, paper saturates ~280x", h2at1024)
	}
	// "more significantly with 4 hybrid groups, with about 580x scaling
	// at 1024 nodes".
	h4at1024 := speedupAt(h4, 1024)
	if h4at1024 < 450 || h4at1024 > 720 {
		t.Fatalf("hybrid-4 @1024 = %.0fx, paper says ~580x", h4at1024)
	}
	if !(h4at1024 > h2at1024 && h2at1024 > speedupAt(sync, 1024)) {
		t.Fatalf("ordering broken: sync %.0f, h2 %.0f, h4 %.0f",
			speedupAt(sync, 1024), h2at1024, h4at1024)
	}
}

func TestFig6bClimateStrongScalingShape(t *testing.T) {
	m := CoriPhaseII()
	p := ClimateProfile()
	nodes := []int{1, 512, 1024}
	sync := StrongScaling(m, p, nodes, 1, 2048, calIters, 42)
	h2 := StrongScaling(m, p, nodes, 2, 2048, calIters, 42)
	h4 := StrongScaling(m, p, nodes, 4, 2048, calIters, 42)

	// "the synchronous algorithm scales only to a maximum of 320x at 512
	// nodes and stops scaling beyond that point".
	s512 := speedupAt(sync, 512)
	if s512 < 250 || s512 > 400 {
		t.Fatalf("climate sync @512 = %.0fx, paper says ~320x", s512)
	}
	if s1024 := speedupAt(sync, 1024); s1024 >= s512 {
		t.Fatalf("climate sync must stop scaling: %.0fx @1024 vs %.0fx @512", s1024, s512)
	}
	// "scalability improving from 580x (on 1024 nodes) for 2 hybrid
	// groups to 780x for 4 hybrid groups".
	h2at := speedupAt(h2, 1024)
	h4at := speedupAt(h4, 1024)
	if h2at < 480 || h2at > 760 {
		t.Fatalf("climate hybrid-2 @1024 = %.0fx, paper says ~580x", h2at)
	}
	if h4at < 650 || h4at > 950 {
		t.Fatalf("climate hybrid-4 @1024 = %.0fx, paper says ~780x", h4at)
	}
	if h4at <= h2at {
		t.Fatal("more groups must help climate strong scaling")
	}
}

func TestFig7aHEPWeakScalingShape(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	nodes := []int{1, 1024, 2048}
	sync := WeakScaling(m, p, nodes, 1, 8, calIters, 42)
	h8 := WeakScaling(m, p, nodes, 8, 8, calIters, 42)

	// "about 575-750x speed-up on 1024 nodes" (all configurations) and
	// "the synchronous speed-up on 2048 nodes stands at about 1500x"
	// versus "1150-1250x … for asynchronous configurations": HEP weak
	// scaling is sublinear and sync beats hybrid (§VI-B2's jitter
	// argument).
	s1024 := speedupAt(sync, 1024)
	if s1024 < 550 || s1024 > 850 {
		t.Fatalf("HEP weak sync @1024 = %.0fx, paper band 575-750x", s1024)
	}
	s2048 := speedupAt(sync, 2048)
	if s2048 < 1300 || s2048 > 1700 {
		t.Fatalf("HEP weak sync @2048 = %.0fx, paper says ~1500x", s2048)
	}
	h2048 := speedupAt(h8, 2048)
	if h2048 < 1000 || h2048 > 1400 {
		t.Fatalf("HEP weak hybrid @2048 = %.0fx, paper band 1150-1250x", h2048)
	}
	if h2048 >= s2048 {
		t.Fatalf("hybrid PS round-trips must cost HEP weak scaling: hybrid %.0fx vs sync %.0fx", h2048, s2048)
	}
}

func TestFig7bClimateWeakScalingShape(t *testing.T) {
	m := CoriPhaseII()
	p := ClimateProfile()
	nodes := []int{1, 2048}
	sync := WeakScaling(m, p, nodes, 1, 8, 5, 42)
	h8 := WeakScaling(m, p, nodes, 8, 8, 5, 42)

	// "near-linear (1750x for synchronous and about 1850x for hybrid
	// configurations)" — 300 ms layers hide the jitter, and hybrid's
	// smaller sync domains reduce stragglers.
	s := speedupAt(sync, 2048)
	h := speedupAt(h8, 2048)
	if s < 1600 || s > 1950 {
		t.Fatalf("climate weak sync @2048 = %.0fx, paper says ~1750x", s)
	}
	if h < 1650 || h > 2000 {
		t.Fatalf("climate weak hybrid @2048 = %.0fx, paper says ~1850x", h)
	}
	if h < s-80 {
		t.Fatalf("hybrid should not trail sync for climate: %.0fx vs %.0fx", h, s)
	}
}

func TestFullSystemHEP(t *testing.T) {
	// §VI-B3: 9594 compute + 6 PS nodes, 9 groups, minibatch 1066/group,
	// 6173x speedup over single-node performance.
	m := CoriPhaseII()
	p := HEPProfile()
	r := FullSystem(m, p, 9594, 9, 1066, 12, 0, 42)
	if r.PSNodes != 6 {
		t.Fatalf("PS nodes = %d, want 6", r.PSNodes)
	}
	if r.Speedup < 5000 || r.Speedup > 8500 {
		t.Fatalf("HEP full-system speedup %.0fx, paper says 6173x", r.Speedup)
	}
	if r.PeakFlops < r.SustainedFlops {
		t.Fatal("peak must dominate sustained")
	}
}

func TestFullSystemClimate(t *testing.T) {
	// §VI-B3: 9608 compute + 14 PS nodes, 8 groups, minibatch 9608/group,
	// 7205x speedup, checkpoint every 10 iterations folded into sustained.
	m := CoriPhaseII()
	p := ClimateProfile()
	r := FullSystem(m, p, 9608, 8, 9608, 12, 10, 42)
	if r.PSNodes != 14 {
		t.Fatalf("PS nodes = %d, want 14", r.PSNodes)
	}
	if r.Speedup < 6000 || r.Speedup > 9200 {
		t.Fatalf("climate full-system speedup %.0fx, paper says 7205x", r.Speedup)
	}
	// Multi-PFLOP/s aggregate, the paper's headline scale.
	if r.SustainedFlops < 5e15 {
		t.Fatalf("climate sustained %.2f PF — should be multi-PF", r.SustainedFlops/1e15)
	}
}
