package cluster

import (
	"deep15pf/internal/climate"
	"deep15pf/internal/hep"
	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// NetProfile is everything the performance model needs to know about a
// network: per-sample flop counts (taken from the real layer definitions,
// not hand-entered), per-trainable-layer model bytes (the PS payloads and
// allreduce message sizes), and the calibrated batch-efficiency curve.
type NetProfile struct {
	Name            string
	FlopsPerSample  float64 // fwd+bwd algorithmic flops
	ExecPerSample   float64 // fwd+bwd SIMD-lane-padded ("executed") flops
	LayerBytes      []int64 // model bytes per trainable layer, in layer order
	TotalModelBytes int64
	Eff             EffCurve

	// FwdShare is the forward pass's share of per-sample flops; the
	// overlapped-exchange model uses it to place each layer's
	// gradient-completion time inside the iteration (gradients only start
	// appearing once the backward pass begins).
	FwdShare float64
	// LayerBwdFracs is each trainable layer's share of the backward flops
	// (layer order, summing to 1). Backward runs layers in reverse, so the
	// last layer's gradients are ready after its own fraction, the first
	// layer's only at the very end — the schedule the §III-D/E overlap
	// pipelines communication into.
	LayerBwdFracs []float64

	// SampleBytes is the raw input volume per sample (Table I's per-sample
	// share) — what the ingest model reads per iteration when
	// RunConfig.IngestIO is on.
	SampleBytes int64
	// ReadEff is the single-threaded reader's efficiency against the
	// machine's ReadBandwidth, calibrated to the paper's measured Fig 5
	// I/O shares (≈2% of the HEP iteration, ≈13% of climate's — the
	// non-threaded HDF5 reader sustains far less of the link on the
	// 16-channel climate layout than on HEP's 3-channel images).
	ReadEff float64
}

// NumTrainableLayers returns the per-layer parameter-server count the
// hybrid architecture dedicates to this network (§III-E: 6 for HEP, 14 for
// climate).
func (p NetProfile) NumTrainableLayers() int { return len(p.LayerBytes) }

// HEPProfile derives the profile of the paper's supervised HEP network
// from the real model definition (224×224×3, Table II).
//
// Efficiency calibration anchors: 1.90 TF/s at batch 8 on one node
// (Fig 5a) and the strong-scaling saturation of the synchronous
// configuration between 256 and 1024 nodes (Fig 6a), which requires the
// sharp small-batch knee DeepBench reports for minibatches below ~8.
func HEPProfile() NetProfile {
	rng := tensor.NewRNG(0xEC)
	net := hep.BuildNet(hep.PaperConfig(), rng)
	p := profileFromBreakdown("hep", net.FLOPBreakdown(), EffCurve{Max: 0.43, Knee: 3.71, Pow: 2.4})
	p.SampleBytes = 4 * 3 * 224 * 224 // Table I: 3-channel 224×224 fp32
	p.ReadEff = 0.88                  // anchors the blocking I/O share at Fig 5a's ≈2%
	return p
}

// ClimateProfile derives the profile of the semi-supervised climate
// network (768×768×16, Table II). Anchors: 2.09 TF/s at batch 8 (Fig 5b)
// and synchronous strong-scaling saturation past 512 nodes (Fig 6b) — a
// slightly gentler knee than HEP because the huge spatial extent keeps
// GEMMs fat even at small batch.
func ClimateProfile() NetProfile {
	rng := tensor.NewRNG(0xC1)
	net := climate.BuildNet(climate.PaperConfig(), rng)
	p := profileFromBreakdown("climate", net.FLOPBreakdown(), EffCurve{Max: 0.43, Knee: 2.91, Pow: 3.1})
	p.SampleBytes = 4 * 16 * 768 * 768 // Table I: 16-channel 768×768 fp32
	p.ReadEff = 0.17                   // anchors the blocking I/O share at Fig 5b's ≈13%
	return p
}

func profileFromBreakdown(name string, rows []nn.LayerFlop, eff EffCurve) NetProfile {
	p := NetProfile{Name: name, Eff: eff}
	var fwd, bwd, trainBwd float64
	for _, r := range rows {
		p.FlopsPerSample += float64(r.Count.Total())
		p.ExecPerSample += float64(r.Count.TotalExecuted())
		fwd += float64(r.Count.Fwd)
		bwd += float64(r.Count.Bwd)
		if r.Bytes > 0 {
			p.LayerBytes = append(p.LayerBytes, r.Bytes)
			p.TotalModelBytes += r.Bytes
			p.LayerBwdFracs = append(p.LayerBwdFracs, float64(r.Count.Bwd))
			trainBwd += float64(r.Count.Bwd)
		}
	}
	if fwd+bwd > 0 {
		p.FwdShare = fwd / (fwd + bwd)
	}
	if trainBwd > 0 {
		for i := range p.LayerBwdFracs {
			p.LayerBwdFracs[i] /= trainBwd
		}
	} else {
		// Degenerate breakdown (no backward flops recorded): spread the
		// readiness schedule evenly rather than poisoning it with NaNs.
		for i := range p.LayerBwdFracs {
			p.LayerBwdFracs[i] = 1 / float64(len(p.LayerBwdFracs))
		}
	}
	return p
}

// NodeFlopRate returns the modelled per-node algorithmic flop rate at the
// given per-node minibatch.
func (p NetProfile) NodeFlopRate(m MachineSpec, batchPerNode float64) float64 {
	return m.SustainedPeakFlops() * p.Eff.At(batchPerNode)
}

// ComputeTime returns the jitter-free time for one node to process
// batchPerNode samples.
func (p NetProfile) ComputeTime(m MachineSpec, batchPerNode float64) float64 {
	if batchPerNode <= 0 {
		return 0
	}
	return batchPerNode * p.FlopsPerSample / p.NodeFlopRate(m, batchPerNode)
}

// ReadTime returns the time for one node's single-threaded reader to stage
// batchPerNode samples from the filesystem (deterministic — the ingest
// model adds no jitter, so enabling it never perturbs the RNG stream).
func (p NetProfile) ReadTime(m MachineSpec, batchPerNode float64) float64 {
	if batchPerNode <= 0 || p.SampleBytes <= 0 || m.ReadBandwidth <= 0 {
		return 0
	}
	eff := p.ReadEff
	if eff <= 0 {
		eff = 1
	}
	return batchPerNode * float64(p.SampleBytes) / (m.ReadBandwidth * eff)
}
