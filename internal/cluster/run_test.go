package cluster

import (
	"math"
	"testing"
)

func TestSimulateDeterministic(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	cfg := RunConfig{Nodes: 64, Groups: 4, BatchPerGroup: 256, Iterations: 5, Seed: 7}
	a := Simulate(m, p, cfg)
	b := Simulate(m, p, cfg)
	if a.WallTime != b.WallTime || a.Throughput != b.Throughput {
		t.Fatal("same seed must reproduce the run exactly")
	}
}

func TestSimulateCountsIterations(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	r := Simulate(m, p, RunConfig{Nodes: 16, Groups: 2, BatchPerGroup: 64, Iterations: 7, Seed: 1})
	if len(r.IterDurations) != 2 {
		t.Fatalf("groups = %d", len(r.IterDurations))
	}
	for g, d := range r.IterDurations {
		if len(d) != 7 {
			t.Fatalf("group %d completed %d iterations, want 7", g, len(d))
		}
	}
	if r.TotalImages != 2*7*64 {
		t.Fatalf("TotalImages = %d", r.TotalImages)
	}
	if r.Throughput <= 0 || r.FlopRate <= 0 {
		t.Fatal("rates must be positive")
	}
}

func TestSyncRunHasNoPS(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	r := Simulate(m, p, RunConfig{Nodes: 16, Groups: 1, BatchPerGroup: 64, Iterations: 3, Seed: 1})
	if r.PSNodes != 0 {
		t.Fatalf("sync run allocated %d PS nodes", r.PSNodes)
	}
	h := Simulate(m, p, RunConfig{Nodes: 16, Groups: 2, BatchPerGroup: 64, Iterations: 3, Seed: 1})
	if h.PSNodes != p.NumTrainableLayers() {
		t.Fatalf("hybrid PS nodes = %d, want %d", h.PSNodes, p.NumTrainableLayers())
	}
}

func TestPeakAtLeastSustained(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	r := Simulate(m, p, RunConfig{Nodes: 128, Groups: 4, BatchPerGroup: 512, Iterations: 15, Seed: 3})
	if r.PeakFlopRate < r.SustainedFlopRate {
		t.Fatalf("peak %v < sustained %v", r.PeakFlopRate, r.SustainedFlopRate)
	}
	if r.ExecPeak < r.PeakFlopRate {
		t.Fatal("executed rate must dominate algorithmic")
	}
}

func TestCheckpointOverheadSlowsRun(t *testing.T) {
	m := CoriPhaseII()
	p := ClimateProfile()
	base := RunConfig{Nodes: 64, Groups: 1, BatchPerGroup: 512, Iterations: 21, Seed: 4}
	withCkpt := base
	withCkpt.CheckpointEvery = 10
	r0 := Simulate(m, p, base)
	r1 := Simulate(m, p, withCkpt)
	if r1.WallTime <= r0.WallTime {
		t.Fatalf("checkpointing must add time: %v vs %v", r1.WallTime, r0.WallTime)
	}
}

func TestDeadNodeHaltsSyncRun(t *testing.T) {
	// §VIII-A: "even a single node failure can cause complete failure of
	// synchronous runs; hybrid runs are much more resilient since only
	// one of the compute groups gets affected."
	m := CoriPhaseII()
	p := HEPProfile()
	fail := &FailureSpec{Group: 0, StartIter: 5, Dead: true}
	sync := Simulate(m, p, RunConfig{Nodes: 64, Groups: 1, BatchPerGroup: 256, Iterations: 10, Seed: 5, Failure: fail})
	if !sync.Halted {
		t.Fatal("sync run must halt")
	}
	if n := len(sync.IterDurations[0]); n != 5 {
		t.Fatalf("sync completed %d iterations, want 5 before the failure", n)
	}
	hybrid := Simulate(m, p, RunConfig{Nodes: 64, Groups: 4, BatchPerGroup: 256, Iterations: 10, Seed: 5, Failure: fail})
	if !hybrid.Halted {
		t.Fatal("failed group must halt")
	}
	var healthyIters int
	for g := 1; g < 4; g++ {
		healthyIters += len(hybrid.IterDurations[g])
	}
	if healthyIters != 3*10 {
		t.Fatalf("healthy groups must finish: %d iterations", healthyIters)
	}
	// Hybrid completes 35/40 group-iterations; sync completes 5/10.
	if hybrid.TotalImages <= sync.TotalImages*3 {
		t.Fatalf("hybrid should retain most throughput: %d vs %d", hybrid.TotalImages, sync.TotalImages)
	}
}

func TestStragglerSlowdownStretchesIterations(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	fail := &FailureSpec{Group: 0, StartIter: 2, Duration: 3, Slowdown: 10}
	r := Simulate(m, p, RunConfig{Nodes: 32, Groups: 1, BatchPerGroup: 256, Iterations: 8, Seed: 6, Failure: fail})
	d := r.IterDurations[0]
	if len(d) != 8 {
		t.Fatalf("run must complete, got %d iterations", len(d))
	}
	healthy := (d[0] + d[1]) / 2
	slowed := (d[2] + d[3] + d[4]) / 3
	recovered := (d[6] + d[7]) / 2
	if slowed < 5*healthy {
		t.Fatalf("straggler barely visible: %v vs %v", slowed, healthy)
	}
	if recovered > 2*healthy {
		t.Fatalf("run did not recover: %v vs %v", recovered, healthy)
	}
}

func TestSinglePSAblationSaturates(t *testing.T) {
	// §III-E: per-layer parameter servers exist "to reduce the chances of
	// PS saturation". One shared PS serving every layer of many groups
	// must show far higher utilisation and lower throughput.
	m := CoriPhaseII()
	p := HEPProfile()
	base := RunConfig{Nodes: 512, Groups: 8, BatchPerGroup: 512, Iterations: 8, Seed: 7}
	perLayer := Simulate(m, p, base)
	shared := base
	shared.SinglePS = true
	single := Simulate(m, p, shared)
	if single.PSNodes != 1 || perLayer.PSNodes != 6 {
		t.Fatalf("PS nodes: %d vs %d", single.PSNodes, perLayer.PSNodes)
	}
	if single.PSMaxUtilization <= perLayer.PSMaxUtilization {
		t.Fatalf("shared PS should be hotter: %.2f vs %.2f",
			single.PSMaxUtilization, perLayer.PSMaxUtilization)
	}
	if single.Throughput >= perLayer.Throughput {
		t.Fatalf("shared PS should not be faster: %.0f vs %.0f img/s",
			single.Throughput, perLayer.Throughput)
	}
}

func TestMeanIterTime(t *testing.T) {
	r := RunResult{IterDurations: [][]float64{{1, 3}, {2}}}
	if got := r.MeanIterTime(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	empty := RunResult{IterDurations: [][]float64{{}}}
	if !math.IsInf(empty.MeanIterTime(), 1) {
		t.Fatal("empty run must be +inf")
	}
}

func TestSimulateValidation(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	mustPanic := func(cfg RunConfig) {
		defer func() { _ = recover() }()
		Simulate(m, p, cfg)
		t.Fatalf("expected panic for %+v", cfg)
	}
	mustPanic(RunConfig{Nodes: 2, Groups: 4, BatchPerGroup: 8, Iterations: 1})
	mustPanic(RunConfig{Nodes: 4, Groups: 0, BatchPerGroup: 8, Iterations: 1})
	mustPanic(RunConfig{Nodes: 4, Groups: 1, BatchPerGroup: 0, Iterations: 1})
}

func TestProfileBwdFracs(t *testing.T) {
	for _, p := range []NetProfile{HEPProfile(), ClimateProfile()} {
		if len(p.LayerBwdFracs) != len(p.LayerBytes) {
			t.Fatalf("%s: %d fracs for %d layers", p.Name, len(p.LayerBwdFracs), len(p.LayerBytes))
		}
		var sum float64
		for _, f := range p.LayerBwdFracs {
			if f <= 0 {
				t.Fatalf("%s: non-positive backward fraction %v", p.Name, f)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: backward fractions sum to %v", p.Name, sum)
		}
		if p.FwdShare <= 0 || p.FwdShare >= 1 {
			t.Fatalf("%s: forward share %v out of (0,1)", p.Name, p.FwdShare)
		}
	}
}

// TestOverlapHidesCommunication: with the overlapped schedule the same
// workload must finish sooner, and the exposed communication time must drop
// well below the total communication work — the §III-D/E property the
// refactor exists to model.
func TestOverlapHidesCommunication(t *testing.T) {
	m := CoriPhaseII()
	p := HEPProfile()
	cfg := RunConfig{Nodes: 512, Groups: 4, BatchPerGroup: 256, Iterations: 20, Seed: 9}
	lock := Simulate(m, p, cfg)
	cfg.Overlap = true
	over := Simulate(m, p, cfg)
	if over.WallTime >= lock.WallTime {
		t.Fatalf("overlap did not shorten the run: %.3fs vs %.3fs", over.WallTime, lock.WallTime)
	}
	if lock.ExposedCommSeconds <= 0 || lock.CommSeconds <= 0 {
		t.Fatal("lockstep must expose communication time")
	}
	if over.ExposedCommSeconds >= lock.ExposedCommSeconds {
		t.Fatalf("overlap exposed %.3fs of comm, lockstep %.3fs — nothing hidden",
			over.ExposedCommSeconds, lock.ExposedCommSeconds)
	}
}

// TestInt8CodecShrinksPSTraffic: the int8 wire must cut the communication
// work of a hybrid run whose layers are big enough for bandwidth to matter.
// Climate's multi-megabyte layers are that regime; HEP's small layers are
// latency-dominated (§VI-B2), where the codec correctly buys little.
func TestInt8CodecShrinksPSTraffic(t *testing.T) {
	m := CoriPhaseII()
	p := ClimateProfile()
	cfg := RunConfig{Nodes: 512, Groups: 8, BatchPerGroup: 128, Iterations: 10, Seed: 4}
	fp32 := Simulate(m, p, cfg)
	cfg.Codec = "int8"
	int8r := Simulate(m, p, cfg)
	if int8r.CommSeconds >= fp32.CommSeconds {
		t.Fatalf("int8 wire did not cut comm work: %.3fs vs %.3fs", int8r.CommSeconds, fp32.CommSeconds)
	}
	if int8r.WallTime >= fp32.WallTime {
		t.Fatalf("int8 wire did not shorten the run: %.3fs vs %.3fs", int8r.WallTime, fp32.WallTime)
	}
}

// TestUnknownClusterCodecRejected: a bad codec name must fail loudly at
// Simulate entry, not silently fall back to fp32 timing.
func TestUnknownClusterCodecRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Simulate(CoriPhaseII(), HEPProfile(), RunConfig{
		Nodes: 8, Groups: 1, BatchPerGroup: 8, Iterations: 1, Codec: "fp64"})
}
