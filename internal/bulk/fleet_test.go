package bulk

import (
	"strings"
	"testing"
	"time"

	"deep15pf/internal/hep"
	"deep15pf/internal/serve"
)

// fleetCfg is the wire shape every fleet test needs: hep images are rank-3
// on the model side, so the batched frames must carry [n, C, S, S].
func fleetCfg(batch int) Config {
	return Config{Batch: batch, InShape: []int{hep.Channels, 8, 8}}
}

// TestFleetMatchesSingleEngine pins fleet correctness: two backends
// stealing shards off the shared queue must produce exactly the
// predictions one local engine computes, with no requeues on a clean run.
func TestFleetMatchesSingleEngine(t *testing.T) {
	net, ds := trainTiny(t, 60, 6)
	ss := unlabeledShards(t, ds, 6)
	lm := loadTiny(t, net, ds, serve.Float32)

	b0 := startBackend(t, lm, serve.Config{MaxBatch: 8, Workers: 2})
	b1 := startBackend(t, lm, serve.Config{MaxBatch: 8, Workers: 2})

	var got Predictions
	res, err := ScoreFleet([]string{b0.Addr(), b1.Addr()}, "tiny", ss, fleetCfg(16), &got)
	if err != nil {
		t.Fatalf("ScoreFleet: %v", err)
	}
	if res.Samples != 60 || res.Requeues != 0 || res.BackendsLost != 0 {
		t.Fatalf("clean fleet run: %+v", res)
	}

	eng, err := NewEngine(lm, Config{Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	var want Predictions
	if _, err := eng.Score(ss, &want); err != nil {
		t.Fatal(err)
	}
	for i := range want.Conf {
		if got.Conf[i] != want.Conf[i] || got.Label[i] != want.Label[i] {
			t.Fatalf("sample %d: fleet (%v, %d) vs local (%v, %d)",
				i, got.Conf[i], got.Label[i], want.Conf[i], want.Label[i])
		}
	}
}

// TestFleetBackendDeathZeroLoss is the acceptance gate: a backend killed
// mid-run loses zero shards — its in-flight shard is requeued and finished
// by the survivor, and every sample still scores bitwise-correct.
func TestFleetBackendDeathZeroLoss(t *testing.T) {
	net, ds := trainTiny(t, 96, 6)
	ss := unlabeledShards(t, ds, 12)
	lm := loadTiny(t, net, ds, serve.Float32)

	victim := startBackend(t, lm, serve.Config{MaxBatch: 8, Workers: 2})
	survivor := startBackend(t, lm, serve.Config{MaxBatch: 8, Workers: 2})

	// Pace the victim so its first shard is still in flight when the plug
	// is pulled; the survivor stays fast and drains the queue.
	victim.SetDelay(200 * time.Millisecond)
	go func() {
		time.Sleep(20 * time.Millisecond)
		victim.Close()
	}()

	var got Predictions
	res, err := ScoreFleet([]string{victim.Addr(), survivor.Addr()}, "tiny", ss, fleetCfg(16), &got)
	if err != nil {
		t.Fatalf("ScoreFleet with dying backend: %v", err)
	}
	if res.Samples != 96 {
		t.Fatalf("scored %d samples, want 96", res.Samples)
	}
	if res.Requeues == 0 || res.BackendsLost == 0 {
		t.Fatalf("victim died mid-run yet Requeues=%d BackendsLost=%d", res.Requeues, res.BackendsLost)
	}

	eng, err := NewEngine(lm, Config{Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	var want Predictions
	if _, err := eng.Score(ss, &want); err != nil {
		t.Fatal(err)
	}
	for i := range want.Conf {
		if got.Conf[i] != want.Conf[i] || got.Label[i] != want.Label[i] {
			t.Fatalf("sample %d lost or corrupted: fleet (%v, %d) vs local (%v, %d)",
				i, got.Conf[i], got.Label[i], want.Conf[i], want.Label[i])
		}
	}
}

// TestFleetAllBackendsDead: with every backend unreachable the run must
// error, not return an undercount as success.
func TestFleetAllBackendsDead(t *testing.T) {
	net, ds := trainTiny(t, 16, 1)
	ss := unlabeledShards(t, ds, 2)
	lm := loadTiny(t, net, ds, serve.Float32)
	b := startBackend(t, lm, serve.Config{MaxBatch: 8, Workers: 1})
	addr := b.Addr()
	b.Close()

	var p Predictions
	if _, err := ScoreFleet([]string{addr}, "tiny", ss, fleetCfg(8), &p); err == nil ||
		!strings.Contains(err.Error(), "backends lost") {
		t.Fatalf("all-dead fleet returned %v, want unscored-shards error", err)
	}
}

// TestFleetUnknownModelAborts: a typed refusal is a configuration error —
// abort immediately instead of bouncing the shard between backends forever.
func TestFleetUnknownModelAborts(t *testing.T) {
	net, ds := trainTiny(t, 16, 1)
	ss := unlabeledShards(t, ds, 2)
	lm := loadTiny(t, net, ds, serve.Float32)
	b := startBackend(t, lm, serve.Config{MaxBatch: 8, Workers: 1})

	var p Predictions
	if _, err := ScoreFleet([]string{b.Addr()}, "nope", ss, fleetCfg(8), &p); err == nil ||
		!strings.Contains(err.Error(), "refused") {
		t.Fatalf("unknown model returned %v, want fatal refusal", err)
	}

	// Bad InShape is caught before any wire traffic.
	bad := fleetCfg(8)
	bad.InShape = []int{7}
	if _, err := ScoreFleet([]string{b.Addr()}, "tiny", ss, bad, &p); err == nil ||
		!strings.Contains(err.Error(), "InShape") {
		t.Fatalf("bad InShape returned %v", err)
	}
}
