// Package bulk is the throughput half of the serving story: offline batch
// inference over unlabeled shard sets, feeding the pseudo-label flywheel.
//
// The online stack (internal/serve, internal/netserve) is tuned for tail
// latency — small dynamic batches, linger timers, per-request envelopes,
// hedging. Scoring millions of unlabeled samples is the opposite problem:
// nobody is waiting on any single answer, so every latency mechanism is
// pure overhead. The Engine here strips all of it out:
//
//   - shards stream through data.Pipeline prefetch (I/O hidden behind
//     compute, same machinery as training ingest);
//   - large fixed-size batches run straight into the compiled plans via
//     serve.SharedInferer — no queue, no linger, no per-request envelope,
//     and not even the online path's per-batch output copy;
//   - batch tensors are pooled slot staging, so the warm loop touches the
//     allocator exactly zero times (gated by test);
//   - confidence extraction (nn.SoftmaxTop1) runs in place on the
//     plan-owned logits.
//
// ScoreFleet (fleet.go) is the scale-out form: shards fan out across
// netserve backends through a work-stealing queue, whole [N, …] batches on
// the wire, with shard-granular requeue so a backend dying mid-run loses
// zero shards. WritePseudoShards (pseudo.go) thresholds the predictions
// and writes survivors back as labeled shards for the next training run —
// the label factory of ROADMAP item 1 (pseudo-labeling per Kingma et al.;
// offline catalog scoring per Khan et al.'s DES pipeline).
package bulk

import (
	"fmt"
	"time"

	"deep15pf/internal/data"
	"deep15pf/internal/nn"
	"deep15pf/internal/obs"
	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

// Config parameterises an Engine or a fleet run.
type Config struct {
	// Batch is the fixed inference batch size. Bigger batches amortise
	// dispatch further but round the tail up; 256 (the default) is past
	// the knee for every model in the repo.
	Batch int
	// Lookahead is how many staged batches the prefetcher may run ahead
	// of compute (ring size Lookahead+1). Default 2.
	Lookahead int
	// Trace attaches phase spans (Ingest on the stager lane, Infer on the
	// compute lane, per-shard iter tags on fleet worker lanes). nil
	// records nothing.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives bulk_samples (counter),
	// bulk_batches (counter) and bulk_samples_per_sec (gauge).
	Metrics *obs.Registry
	// InShape is the model's per-sample input shape, required by ScoreFleet
	// only: the backend validates batched wire tensors dim-for-dim against
	// the model input, so flat [n, featLen] frames would be refused for a
	// conv model. Engine ignores it (the local replica reports its own
	// shape). Nil defaults to [featLen].
	InShape []int
}

func (c Config) withDefaults() Config {
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.Batch > serve.MaxBulkBatch {
		c.Batch = serve.MaxBulkBatch
	}
	if c.Lookahead < 1 {
		c.Lookahead = 2
	}
	return c
}

// Predictions holds per-sample scoring results, indexed like the scored
// ShardSet. Buffers grow on demand and are reused across runs.
type Predictions struct {
	Conf  []float32 // top-1 softmax probability
	Label []int32   // argmax class
}

func (p *Predictions) grow(n int) {
	if cap(p.Conf) < n {
		p.Conf = make([]float32, n)
		p.Label = make([]int32, n)
	}
	p.Conf = p.Conf[:n]
	p.Label = p.Label[:n]
}

// Result summarises one scoring run.
type Result struct {
	Samples       int
	Batches       int
	Seconds       float64
	SamplesPerSec float64
}

// Engine scores shard sets through one local replica. Single-goroutine,
// like the replica under it; reuse across Score calls keeps the compiled
// plans and staging warm.
type Engine struct {
	cfg     Config
	rep     serve.Model
	shared  serve.SharedInferer // non-nil: the copy-free datapath
	inShape []int
	inLen   int
	classes int

	arena *tensor.Arena
	slots []*slot
	lane  *obs.Lane
}

// slot is one staged batch in the prefetch ring.
type slot struct {
	stage   *tensor.Staging
	scratch []byte
	x       *tensor.Tensor // view for the staged size, set by the stager
	lo, n   int            // global sample range [lo, lo+n)
}

// NewEngine mints one dedicated replica from m and wraps it for bulk
// scoring. The model must be a classifier — a rank-1 [classes] output —
// because the factory's product is an argmax label per sample.
func NewEngine(m *serve.LoadedModel, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	rep, err := m.NewReplica()
	if err != nil {
		return nil, err
	}
	out := rep.OutShape()
	if len(out) != 1 || out[0] < 2 {
		return nil, fmt.Errorf("bulk: model %q output shape %v is not classification logits", m.ModelArch, out)
	}
	e := &Engine{
		cfg:     cfg,
		rep:     rep,
		inShape: rep.InShape(),
		classes: out[0],
		arena:   tensor.NewArena(),
		lane:    cfg.Trace.Lane("bulk"),
	}
	e.shared, _ = rep.(serve.SharedInferer)
	e.inLen = 1
	for _, d := range e.inShape {
		e.inLen *= d
	}
	return e, nil
}

// ensureSlots (re)builds the staging ring for the configured batch size.
// Pre-sizing at build time means the stager never touches the arena again —
// the same trick training ingest uses — so steady-state staging is
// allocation-free.
func (e *Engine) ensureSlots(scratchLen int) {
	if e.slots != nil && len(e.slots[0].scratch) >= scratchLen {
		return
	}
	e.slots = make([]*slot, e.cfg.Lookahead+1)
	for i := range e.slots {
		st := tensor.NewStaging(e.arena, e.inShape...)
		st.Batch(e.cfg.Batch)
		e.slots[i] = &slot{stage: st, scratch: make([]byte, scratchLen)}
	}
}

// Score runs every sample of ss through the model, filling p (grown to
// ss.Count) with per-sample argmax labels and confidences. Shard reads are
// prefetched on a background goroutine; inference consumes staged batches
// on the calling goroutine. The warm loop is allocation-free on both sides.
func (e *Engine) Score(ss *data.ShardSet, p *Predictions) (Result, error) {
	if ss.FeatLen != e.inLen {
		return Result{}, fmt.Errorf("bulk: shard features %d floats/sample, model wants %d", ss.FeatLen, e.inLen)
	}
	if ss.Count == 0 {
		return Result{}, fmt.Errorf("bulk: empty shard set")
	}
	p.grow(ss.Count)
	e.ensureSlots(ss.ScratchLen())

	// Sequential fixed-size ranges; one reusable index buffer — source and
	// stage both run on the pipeline's single prefetch goroutine, and idx
	// is dead once the stage copy completes.
	idxBuf := make([]int, e.cfg.Batch)
	next := 0
	source := func() []int {
		if next >= ss.Count {
			return nil
		}
		n := min(e.cfg.Batch, ss.Count-next)
		idx := idxBuf[:n]
		for i := range idx {
			idx[i] = next + i
		}
		next += n
		return idx
	}
	ingLane := e.cfg.Trace.Lane("bulk.ingest")
	staged := 0
	pipe := data.NewPipeline(e.slots, source, func(dst *slot, idx []int) error {
		ingLane.SetIter(staged)
		staged++
		ingLane.Begin(obs.PhaseIngest)
		dst.lo, dst.n = idx[0], len(idx)
		dst.x = dst.stage.Batch(dst.n)
		err := ss.ReadBatchInto(idx, dst.x.Data, nil, dst.scratch)
		ingLane.End(obs.PhaseIngest)
		return err
	})
	pipe.Start()
	defer pipe.Stop()

	var res Result
	t0 := time.Now()
	for batch := 0; ; batch++ {
		e.lane.Begin(obs.PhaseIngest)
		s, ok := pipe.Next()
		e.lane.End(obs.PhaseIngest)
		if !ok {
			if err := pipe.Err(); err != nil {
				return Result{}, err
			}
			break
		}
		e.lane.SetIter(batch)
		e.lane.Begin(obs.PhaseInfer)
		err := e.consume(s.x, p.Conf[s.lo:s.lo+s.n], p.Label[s.lo:s.lo+s.n])
		e.lane.End(obs.PhaseInfer)
		if err != nil {
			return Result{}, fmt.Errorf("bulk: samples [%d,%d): %w", s.lo, s.lo+s.n, err)
		}
		res.Samples += s.n
		res.Batches++
	}
	if res.Samples != ss.Count {
		return Result{}, fmt.Errorf("bulk: scored %d of %d samples", res.Samples, ss.Count)
	}
	res.Seconds = time.Since(t0).Seconds()
	if res.Seconds > 0 {
		res.SamplesPerSec = float64(res.Samples) / res.Seconds
	}
	if reg := e.cfg.Metrics; reg != nil {
		reg.Counter("bulk_samples").Add(int64(res.Samples))
		reg.Counter("bulk_batches").Add(int64(res.Batches))
		reg.Gauge("bulk_samples_per_sec").Set(res.SamplesPerSec)
	}
	return res, nil
}

// consume is the per-batch hot path: one forward pass plus in-place
// confidence extraction. Zero allocations once the plan bucket is warm
// (gated by TestEngineWarmPathZeroAlloc).
func (e *Engine) consume(x *tensor.Tensor, conf []float32, label []int32) error {
	var y *tensor.Tensor
	if e.shared != nil {
		y = e.shared.InferShared(x)
	} else {
		y = e.rep.Infer(x)
	}
	return nn.SoftmaxTop1(y, conf, label)
}
