package bulk

import (
	"math"
	"os"
	"strings"
	"testing"

	"deep15pf/internal/data"
	"deep15pf/internal/obs"
	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

// TestEngineScoreMatchesDirect pins the engine's correctness contract on
// both precisions: pipelined, shared-output bulk scoring must be bitwise
// the naive read-batch/Infer/SoftmaxTop1 loop, uneven tail batch included.
func TestEngineScoreMatchesDirect(t *testing.T) {
	net, ds := trainTiny(t, 70, 6)
	ss := unlabeledShards(t, ds, 4)
	for _, prec := range []serve.Precision{serve.Float32, serve.Int8} {
		lm := loadTiny(t, net, ds, prec)
		reg := obs.NewRegistry()
		eng, err := NewEngine(lm, Config{Batch: 24, Metrics: reg})
		if err != nil {
			t.Fatalf("%v: NewEngine: %v", prec, err)
		}
		if eng.shared == nil {
			t.Fatalf("%v: HEP replica did not offer the copy-free datapath", prec)
		}
		var p Predictions
		res, err := eng.Score(ss, &p)
		if err != nil {
			t.Fatalf("%v: Score: %v", prec, err)
		}
		if res.Samples != 70 || res.Batches != 3 {
			t.Fatalf("%v: scored %d samples in %d batches, want 70 in 3", prec, res.Samples, res.Batches)
		}

		rep, err := lm.NewReplica()
		if err != nil {
			t.Fatal(err)
		}
		wantConf, wantLabel := directTop1(t, rep, ss, 24)
		for i := range wantConf {
			if p.Conf[i] != wantConf[i] || p.Label[i] != wantLabel[i] {
				t.Fatalf("%v: sample %d: bulk (%v, %d) vs direct (%v, %d)",
					prec, i, p.Conf[i], p.Label[i], wantConf[i], wantLabel[i])
			}
		}
		if got := reg.Counter("bulk_samples").Value(); got != 70 {
			t.Fatalf("%v: bulk_samples counter %d, want 70", prec, got)
		}

		// Predictions buffers are reused across runs, not reallocated.
		c0, l0 := &p.Conf[0], &p.Label[0]
		if _, err := eng.Score(ss, &p); err != nil {
			t.Fatalf("%v: second Score: %v", prec, err)
		}
		if &p.Conf[0] != c0 || &p.Label[0] != l0 {
			t.Fatalf("%v: Predictions reallocated on reuse", prec)
		}
	}
}

// TestEngineWarmPathZeroAlloc is the hot-path contract the headline
// numbers depend on: once plans and staging are warm, the per-batch
// consume step (forward + in-place top-1) never touches the allocator.
func TestEngineWarmPathZeroAlloc(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	net, ds := trainTiny(t, 64, 3)
	ss := unlabeledShards(t, ds, 2)
	lm := loadTiny(t, net, ds, serve.Float32)
	eng, err := NewEngine(lm, Config{Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	var p Predictions
	if _, err := eng.Score(ss, &p); err != nil {
		t.Fatal(err)
	}

	x := tensor.New(append([]int{32}, eng.inShape...)...)
	tensor.NewRNG(7).FillNorm(x, 0, 1)
	conf := make([]float32, 32)
	label := make([]int32, 32)
	if err := eng.consume(x, conf, label); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := eng.consume(x, conf, label); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm bulk consume allocates %.1f times per batch, want 0", allocs)
	}
}

// TestEngineRejectsNaN: non-finite logits (here from a bit-rotted
// checkpoint — NaN input pixels get flushed by ReLU, corrupt weights do
// not) must fail the whole run loudly, never become pseudo-labels.
func TestEngineRejectsNaN(t *testing.T) {
	net, ds := trainTiny(t, 16, 1)
	params := net.Params()
	last := params[len(params)-1].W.Data
	for j := range last {
		last[j] = float32(math.NaN())
	}
	ss := unlabeledShards(t, ds, 2)

	lm := loadTiny(t, net, ds, serve.Float32)
	eng, err := NewEngine(lm, Config{Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	var p Predictions
	if _, err := eng.Score(ss, &p); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN logits scored without complaint: %v", err)
	}
}

// TestEngineShapeAndEmptyErrors: mismatched shard geometry and empty sets
// are configuration errors, not zero-sample successes.
func TestEngineShapeAndEmptyErrors(t *testing.T) {
	net, ds := trainTiny(t, 16, 1)
	lm := loadTiny(t, net, ds, serve.Float32)
	eng, err := NewEngine(lm, Config{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	feats := make([]float32, 4*7)
	paths, err := data.WriteShards(dir, 1, 4, 7, 0, feats, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := data.OpenShardSet(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	var p Predictions
	if _, err := eng.Score(ss, &p); err == nil || !strings.Contains(err.Error(), "model wants") {
		t.Fatalf("wrong feature length scored: %v", err)
	}
}

// TestWritePseudoShardsThreshold pins the factory output stage: only
// samples at or above threshold survive, features and labels round-trip
// bit-exactly, and an impossible threshold writes nothing at all.
func TestWritePseudoShardsThreshold(t *testing.T) {
	net, ds := trainTiny(t, 48, 6)
	ss := unlabeledShards(t, ds, 3)
	lm := loadTiny(t, net, ds, serve.Float32)
	eng, err := NewEngine(lm, Config{Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	var p Predictions
	if _, err := eng.Score(ss, &p); err != nil {
		t.Fatal(err)
	}

	// Threshold midway between the confidence extremes so both the keep
	// and drop branches are exercised (softmax spread is nonzero on a
	// trained net).
	lo, hi := p.Conf[0], p.Conf[0]
	for _, c := range p.Conf {
		lo, hi = min(lo, c), max(hi, c)
	}
	thr := (lo + hi) / 2
	dir := t.TempDir()
	paths, st, err := WritePseudoShards(dir, 2, ss, &p, thr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 48 || st.Kept == 0 || st.Coverage != float64(st.Kept)/48 {
		t.Fatalf("stats %+v", st)
	}
	out, err := data.OpenShardSet(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if out.Count != st.Kept || out.LabLen != 1 {
		t.Fatalf("wrote %d samples labLen %d, want %d labLen 1", out.Count, out.LabLen, st.Kept)
	}
	// Verify every kept sample's features and label round-tripped exactly.
	feat := make([]float32, out.FeatLen)
	src := make([]float32, out.FeatLen)
	lab := make([]int32, 1)
	scratch := make([]byte, out.ScratchLen())
	srcScratch := make([]byte, ss.ScratchLen())
	bi := 0
	for i, c := range p.Conf {
		if c < thr {
			continue
		}
		if err := out.ReadSampleInto(bi, feat, lab, scratch); err != nil {
			t.Fatal(err)
		}
		if err := ss.ReadSampleInto(i, src, nil, srcScratch); err != nil {
			t.Fatal(err)
		}
		if lab[0] != p.Label[i] {
			t.Fatalf("sample %d: label %d, want %d", i, lab[0], p.Label[i])
		}
		for j := range feat {
			if feat[j] != src[j] {
				t.Fatalf("sample %d feature %d: %v, want %v", i, j, feat[j], src[j])
			}
		}
		bi++
	}

	// Nothing survives 2.0 (softmax tops out at 1): no files, empty dir.
	emptyDir := t.TempDir()
	paths2, st2, err := WritePseudoShards(emptyDir, 2, ss, &p, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths2) != 0 || st2.Kept != 0 {
		t.Fatalf("threshold 2.0 kept %d samples, %d files", st2.Kept, len(paths2))
	}
	ents, err := os.ReadDir(emptyDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("threshold 2.0 left %d files on disk", len(ents))
	}
}
