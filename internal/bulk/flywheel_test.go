package bulk

import (
	"testing"

	"deep15pf/internal/ckpt"
	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/opt"
	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

// subset copies samples [lo, hi) of ds into a standalone Dataset.
func subset(ds *hep.Dataset, lo, hi int) *hep.Dataset {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	x, labels := ds.Batch(idx)
	return &hep.Dataset{Images: x, Labels: labels}
}

// TestFlywheelFullIteration runs one complete pseudo-label cycle through
// the real subsystems end to end:
//
//	train v1 → checkpoint store → Deployment serves v1 → bulk Engine
//	scores unlabeled shards → WritePseudoShards thresholds → retrain on
//	labeled + pseudo (discounted via SampleWeights) → store v2 →
//	PollOnce hot-reloads the deployment.
//
// Pseudo-label accuracy is measured against held-back truth, and coverage
// must fall monotonically as the threshold rises.
func TestFlywheelFullIteration(t *testing.T) {
	rng := tensor.NewRNG(11)
	full := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(8), 96, 0.5, rng)
	labeled := subset(full, 0, 64)
	unlabeled := subset(full, 64, 96) // truth labels held back for grading

	// v1: train on human labels only, snapshotting into the store.
	storeDir := t.TempDir()
	trainCfg := core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 80,
		Solver: opt.NewSGD(0.1, 0.9), Seed: 3,
		Checkpoint: core.CheckpointConfig{Dir: storeDir, Every: 80, Arch: "tiny"},
	}
	core.TrainSync(hep.NewTrainingProblem(labeled, tinyCfg(), 7), trainCfg)

	reg := serve.NewRegistry()
	serve.RegisterHEP(reg, "tiny", tinyCfg())
	store, err := ckpt.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := serve.NewDeployment(reg, "tiny", serve.Float32, store, serve.DeployConfig{
		Server: serve.Config{MaxBatch: 8, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if v := d.CurrentVersion(); v != 1 {
		t.Fatalf("deployment starts at version %d, want 1", v)
	}

	// Score the unlabeled pool with the deployed weights.
	ss := unlabeledShards(t, unlabeled, 4)
	eng, err := NewEngine(d.Loaded(), Config{Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	var p Predictions
	if _, err := eng.Score(ss, &p); err != nil {
		t.Fatal(err)
	}

	// Threshold → pseudo shards; grade survivors against held-back truth.
	const thr = 0.6
	pseudoDir := t.TempDir()
	paths, st, err := WritePseudoShards(pseudoDir, 2, ss, &p, thr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept == 0 {
		t.Fatal("threshold 0.6 kept nothing — model never exceeds coin-flip confidence")
	}
	correct := 0
	for i, c := range p.Conf {
		if c >= thr && int(p.Label[i]) == unlabeled.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(st.Kept)
	t.Logf("pseudo-labels: %d/%d kept (coverage %.2f), accuracy %.2f", st.Kept, st.Total, st.Coverage, acc)

	// Raising the threshold can only shrink coverage.
	_, stHi, err := WritePseudoShards(t.TempDir(), 2, ss, &p, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if stHi.Coverage > st.Coverage {
		t.Fatalf("coverage rose from %.2f to %.2f as threshold rose 0.6→0.95", st.Coverage, stHi.Coverage)
	}

	// Retrain on labeled + pseudo, machine labels discounted to 0.5.
	pseudoDS, err := hep.LoadShardDataset(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if pseudoDS.Images.Shape[0] != st.Kept {
		t.Fatalf("pseudo set reloaded %d samples, wrote %d", pseudoDS.Images.Shape[0], st.Kept)
	}
	combined := labeled.Append(pseudoDS)
	weights := make([]float32, len(combined.Labels))
	for i := range weights {
		if i < len(labeled.Labels) {
			weights[i] = 1
		} else {
			weights[i] = 0.5
		}
	}
	problem2 := hep.NewTrainingProblem(combined, tinyCfg(), 7)
	problem2.SampleWeights = weights
	core.TrainSync(problem2, trainCfg)

	// The deployment notices v2 on the next poll and hot-swaps.
	swapped, err := d.PollOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !swapped || d.CurrentVersion() != 2 || d.Swaps() != 1 {
		t.Fatalf("after retrain: swapped=%v version=%d swaps=%d, want true/2/1",
			swapped, d.CurrentVersion(), d.Swaps())
	}

	// The reloaded deployment scores the pool with the NEW weights —
	// a second engine must produce a different confidence surface.
	eng2, err := NewEngine(d.Loaded(), Config{Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	var p2 Predictions
	if _, err := eng2.Score(ss, &p2); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range p.Conf {
		if p2.Conf[i] != p.Conf[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("v2 scores are bitwise v1's — the hot reload served stale weights")
	}
}
