package bulk

import (
	"fmt"

	"deep15pf/internal/data"
)

// PseudoStats summarises a thresholding pass.
type PseudoStats struct {
	Total    int     // samples scored
	Kept     int     // samples at or above the confidence threshold
	Coverage float64 // Kept/Total
}

// WritePseudoShards is the factory's output stage: every sample whose
// top-1 confidence reaches threshold is written back as a (features,
// argmax-label) pair across numShards labeled shard files under dir —
// exactly the layout hep.LoadShardDataset and the -unlabeled-dir training
// flag consume. Features are re-read from the source set (the factory
// never holds the full feature matrix in memory during scoring), so the
// written floats are bit-identical to the input shards.
//
// A threshold nothing survives yields no files at all — WriteShards skips
// empty spans rather than writing 0-sample shards the reader would reject.
func WritePseudoShards(dir string, numShards int, ss *data.ShardSet, p *Predictions, threshold float32) ([]string, PseudoStats, error) {
	if len(p.Conf) != ss.Count || len(p.Label) != ss.Count {
		return nil, PseudoStats{}, fmt.Errorf("bulk: predictions cover %d samples, set holds %d", len(p.Conf), ss.Count)
	}
	st := PseudoStats{Total: ss.Count}
	kept := make([]int, 0, ss.Count)
	for i, c := range p.Conf {
		if c >= threshold {
			kept = append(kept, i)
		}
	}
	st.Kept = len(kept)
	if st.Total > 0 {
		st.Coverage = float64(st.Kept) / float64(st.Total)
	}

	feats := make([]float32, len(kept)*ss.FeatLen)
	labels := make([]int32, len(kept))
	scratch := make([]byte, ss.ScratchLen())
	for bi, i := range kept {
		if err := ss.ReadSampleInto(i, feats[bi*ss.FeatLen:(bi+1)*ss.FeatLen], nil, scratch); err != nil {
			return nil, st, err
		}
		labels[bi] = p.Label[i]
	}
	paths, err := data.WriteShards(dir, numShards, len(kept), ss.FeatLen, 1, feats, labels)
	if err != nil {
		return nil, st, err
	}
	return paths, st, nil
}
