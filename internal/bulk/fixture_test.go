package bulk

import (
	"path/filepath"
	"testing"

	"deep15pf/internal/data"
	"deep15pf/internal/hep"
	"deep15pf/internal/netserve"
	"deep15pf/internal/nn"
	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

// tinyCfg is the micro HEP classifier the bulk tests score: milliseconds
// to train, real logits to threshold.
func tinyCfg() hep.ModelConfig {
	return hep.ModelConfig{Name: "bulk-test", ImageSize: 8, Filters: 4, ConvUnits: 2, Classes: 2}
}

// trainTiny trains the tiny classifier a few plain-SGD steps so scored
// confidences are genuinely peaked, not init noise.
func trainTiny(t *testing.T, samples, steps int) (*nn.Network, *hep.Dataset) {
	t.Helper()
	rng := tensor.NewRNG(11)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(8), samples, 0.5, rng)
	net := hep.BuildNet(tinyCfg(), rng)
	idx := make([]int, 16)
	for step := 0; step < steps; step++ {
		for i := range idx {
			idx[i] = (step*len(idx) + i) % len(ds.Labels)
		}
		x, labels := ds.Batch(idx)
		net.ZeroGrad()
		logits := net.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
		for _, p := range net.Params() {
			for j := range p.W.Data {
				p.W.Data[j] -= 0.01 * p.Grad.Data[j] / float32(len(idx))
			}
		}
	}
	return net, ds
}

// loadTiny checkpoints net and loads it back through the serve registry at
// the given precision (Int8 is calibrated on the first 8 samples).
func loadTiny(t *testing.T, net *nn.Network, ds *hep.Dataset, prec serve.Precision) *serve.LoadedModel {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tiny.d15w")
	if err := nn.SaveFile(path, net.Params()); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	r := serve.NewRegistry()
	serve.RegisterHEP(r, "tiny", tinyCfg())
	lm, err := r.Load("tiny", path, prec)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if prec == serve.Int8 {
		x, _ := ds.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})
		if err := lm.Calibrate(x); err != nil {
			t.Fatalf("Calibrate: %v", err)
		}
	}
	return lm
}

// unlabeledShards writes ds's images (features only) as numShards shard
// files and opens them as one set.
func unlabeledShards(t *testing.T, ds *hep.Dataset, numShards int) *data.ShardSet {
	t.Helper()
	paths, err := ds.SaveShards(t.TempDir(), numShards)
	if err != nil {
		t.Fatalf("SaveShards: %v", err)
	}
	ss, err := data.OpenShardSet(paths...)
	if err != nil {
		t.Fatalf("OpenShardSet: %v", err)
	}
	t.Cleanup(func() { ss.Close() })
	return ss
}

// startBackend brings up one serve engine + network face on loopback,
// serving model "tiny" from lm. Cleanup is idempotent with an early
// mid-test kill.
func startBackend(t *testing.T, lm *serve.LoadedModel, scfg serve.Config) *netserve.Server {
	t.Helper()
	eng, err := serve.NewServer(lm, scfg)
	if err != nil {
		t.Fatalf("serve.NewServer: %v", err)
	}
	ns, err := netserve.NewServer("127.0.0.1:0", map[string]*serve.Server{"tiny": eng}, netserve.ServerConfig{})
	if err != nil {
		eng.Close()
		t.Fatalf("netserve.NewServer: %v", err)
	}
	t.Cleanup(func() {
		ns.Close()
		eng.Close()
	})
	return ns
}

// directTop1 computes the reference predictions with rep.Infer batch by
// batch at the same split the engine uses, so comparisons can demand
// bitwise equality.
func directTop1(t *testing.T, rep serve.Model, ss *data.ShardSet, batch int) ([]float32, []int32) {
	t.Helper()
	conf := make([]float32, ss.Count)
	label := make([]int32, ss.Count)
	scratch := make([]byte, ss.ScratchLen())
	shape := rep.InShape()
	for at := 0; at < ss.Count; at += batch {
		n := min(batch, ss.Count-at)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = at + i
		}
		x := tensor.New(append([]int{n}, shape...)...)
		if err := ss.ReadBatchInto(idx, x.Data, nil, scratch); err != nil {
			t.Fatalf("ReadBatchInto: %v", err)
		}
		if err := nn.SoftmaxTop1(rep.Infer(x), conf[at:at+n], label[at:at+n]); err != nil {
			t.Fatalf("SoftmaxTop1: %v", err)
		}
	}
	return conf, label
}
