package bulk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"deep15pf/internal/data"
	"deep15pf/internal/netserve"
	"deep15pf/internal/nn"
	"deep15pf/internal/obs"
	"deep15pf/internal/tensor"
)

// FleetResult summarises a fleet scoring run.
type FleetResult struct {
	Samples       int
	Seconds       float64
	SamplesPerSec float64
	// Requeues counts shard re-dispatches after a backend failure; zero on
	// a clean run.
	Requeues int
	// BackendsLost counts workers that died mid-run (their shards were
	// requeued and finished elsewhere).
	BackendsLost int
}

// ScoreFleet fans ss's shards out across the netserve backends at addrs:
// one worker goroutine per backend, all stealing whole shards from a
// shared queue, each shard scored as pre-assembled [N, InShape...] batches
// over the wire (the server's InferBatch fast path — no dynamic batcher in
// the loop). Work stealing makes the fleet self-balancing: a slow backend
// simply takes fewer shards.
//
// Fault model: a shard is the unit of loss recovery. A worker whose
// transport dies (or whose backend starts draining) requeues its shard —
// the queue has capacity for every shard, and a requeued shard was
// necessarily dequeued first, so the send never blocks — and exits;
// surviving workers pick it up. Re-scoring a shard overwrites the same
// disjoint prediction range, so partial first attempts are harmless. Typed
// model/shape refusals are configuration errors and abort the whole run
// instead of bouncing forever. If every backend dies with shards
// outstanding, ScoreFleet returns an error rather than silent undercount.
func ScoreFleet(addrs []string, model string, ss *data.ShardSet, cfg Config, p *Predictions) (FleetResult, error) {
	cfg = cfg.withDefaults()
	if len(addrs) == 0 {
		return FleetResult{}, fmt.Errorf("bulk: fleet needs at least one backend")
	}
	if ss.Count == 0 {
		return FleetResult{}, fmt.Errorf("bulk: empty shard set")
	}
	inShape := cfg.InShape
	if inShape == nil {
		inShape = []int{ss.FeatLen}
	}
	if n := prod(inShape); n != ss.FeatLen {
		return FleetResult{}, fmt.Errorf("bulk: InShape %v holds %d elements, shards carry %d floats/sample", inShape, n, ss.FeatLen)
	}
	p.grow(ss.Count)

	numShards := ss.Shards()
	queue := make(chan int, numShards)
	for k := 0; k < numShards; k++ {
		queue <- k
	}
	var (
		remaining atomic.Int64 // shards not yet fully scored
		requeues  atomic.Int64
		lost      atomic.Int64
		wg        sync.WaitGroup
		quitOnce  sync.Once
		quit      = make(chan struct{})
		fatalMu   sync.Mutex
		fatalErr  error
	)
	remaining.Store(int64(numShards))
	abort := func(err error) {
		fatalMu.Lock()
		if fatalErr == nil {
			fatalErr = err
		}
		fatalMu.Unlock()
		quitOnce.Do(func() { close(quit) })
	}

	t0 := time.Now()
	for wi, addr := range addrs {
		wg.Add(1)
		go func(wi int, addr string) {
			defer wg.Done()
			w, err := newFleetWorker(addr, model, ss, cfg, inShape, p, cfg.Trace.Lane(fmt.Sprintf("bulk.f%d", wi)))
			if err != nil {
				lost.Add(1) // never joined; its share stays queued for others
				return
			}
			defer w.close()
			for {
				var k int
				var ok bool
				select {
				case k, ok = <-queue:
					if !ok {
						return
					}
				case <-quit:
					return
				}
				if err := w.scoreShard(k); err != nil {
					var re *netserve.RemoteError
					if errors.As(err, &re) && (re.Code == netserve.CodeUnknownModel || re.Code == netserve.CodeBadShape) {
						abort(fmt.Errorf("bulk: backend %s refused shard %d: %w", addr, k, err))
						return
					}
					// Transport failure or draining backend: put the shard
					// back for a surviving worker and retire this one.
					queue <- k
					requeues.Add(1)
					lost.Add(1)
					return
				}
				if remaining.Add(-1) == 0 {
					close(queue)
				}
			}
		}(wi, addr)
	}
	wg.Wait()

	res := FleetResult{
		Samples:      ss.Count,
		Seconds:      time.Since(t0).Seconds(),
		Requeues:     int(requeues.Load()),
		BackendsLost: int(lost.Load()),
	}
	fatalMu.Lock()
	err := fatalErr
	fatalMu.Unlock()
	if err != nil {
		return res, err
	}
	if left := remaining.Load(); left > 0 {
		return res, fmt.Errorf("bulk: all %d backends lost with %d shards unscored", len(addrs), left)
	}
	if res.Seconds > 0 {
		res.SamplesPerSec = float64(res.Samples) / res.Seconds
	}
	if reg := cfg.Metrics; reg != nil {
		reg.Counter("bulk_samples").Add(int64(res.Samples))
		reg.Gauge("bulk_samples_per_sec").Set(res.SamplesPerSec)
	}
	return res, nil
}

// fleetWorker is one backend's scoring loop: its own connection, staging
// tensor, scratch and index buffer, so workers share nothing but the
// shard queue and disjoint prediction ranges.
type fleetWorker struct {
	c       *netserve.Client
	model   string
	ss      *data.ShardSet
	batch   int
	inShape []int
	p       *Predictions
	x       *tensor.Tensor
	idx     []int
	scratch []byte
	lane    *obs.Lane
}

func newFleetWorker(addr, model string, ss *data.ShardSet, cfg Config, inShape []int, p *Predictions, lane *obs.Lane) (*fleetWorker, error) {
	c, err := netserve.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &fleetWorker{
		c: c, model: model, ss: ss, batch: cfg.Batch, inShape: inShape, p: p,
		idx:     make([]int, cfg.Batch),
		scratch: make([]byte, ss.ScratchLen()),
		lane:    lane,
	}, nil
}

func (w *fleetWorker) close() { w.c.Close() }

// scoreShard stages shard k batch by batch, ships each batch as one wire
// request, and writes confidences/labels into the shard's global range.
func (w *fleetWorker) scoreShard(k int) error {
	lo, hi := w.ss.ShardRange(k)
	w.lane.SetIter(k)
	for at := lo; at < hi; at += w.batch {
		n := min(w.batch, hi-at)
		idx := w.idx[:n]
		for i := range idx {
			idx[i] = at + i
		}
		if w.x == nil || w.x.Shape[0] != n {
			w.x = tensor.New(append([]int{n}, w.inShape...)...)
		}
		w.lane.Begin(obs.PhaseIngest)
		err := w.ss.ReadBatchInto(idx, w.x.Data, nil, w.scratch)
		w.lane.End(obs.PhaseIngest)
		if err != nil {
			return err
		}
		w.lane.Begin(obs.PhaseNetWait)
		y, err := w.c.Infer(w.model, w.x)
		w.lane.End(obs.PhaseNetWait)
		if err != nil {
			return err
		}
		w.lane.Begin(obs.PhaseInfer)
		err = nn.SoftmaxTop1(y, w.p.Conf[at:at+n], w.p.Label[at:at+n])
		w.lane.End(obs.PhaseInfer)
		if err != nil {
			return err
		}
	}
	return nil
}

func prod(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
