package serve

import (
	"sync"
	"testing"

	"deep15pf/internal/tensor"
)

// TestInferSharedMatchesInfer pins the SharedInferer contract: the
// copy-free output must be bitwise the copied one, on both datapaths.
func TestInferSharedMatchesInfer(t *testing.T) {
	net, ds := trainTinyHEP(t, 3)
	path := saveTinyHEP(t, net)
	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())
	for _, prec := range []Precision{Float32, Int8} {
		lm, err := r.Load("tiny", path, prec)
		if err != nil {
			t.Fatal(err)
		}
		if prec == Int8 {
			x, _ := ds.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})
			if err := lm.Calibrate(x); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := lm.NewReplica()
		if err != nil {
			t.Fatal(err)
		}
		sh, ok := rep.(SharedInferer)
		if !ok {
			t.Fatalf("%v HEP replica does not implement SharedInferer", prec)
		}
		x := tensor.New(append([]int{4}, rep.InShape()...)...)
		tensor.NewRNG(11).FillNorm(x, 0, 1)
		want := rep.Infer(x)
		got := sh.InferShared(x)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%v: InferShared diverges from Infer at %d: %v vs %v", prec, i, got.Data[i], want.Data[i])
			}
		}
		// The shared output is plan-owned: a second forward overwrites it.
		before := got.Data[0]
		x.Data[0] += 3
		sh.InferShared(x)
		_ = before // overwritten or not, the pointer identity is what matters
		if &got.Data[0] != &sh.InferShared(x).Data[0] {
			t.Fatalf("%v: InferShared copied its output — the point is not to", prec)
		}
	}
}

// TestInferSharedZeroAlloc pins the bulk hot path's allocation contract:
// a warmed InferShared allocates nothing at all — not even the response
// copy the online path pays.
func TestInferSharedZeroAlloc(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	net, _ := trainTinyHEP(t, 3)
	path := saveTinyHEP(t, net)
	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())
	lm, err := r.Load("tiny", path, Float32)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lm.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	sh := rep.(SharedInferer)
	x := tensor.New(append([]int{8}, rep.InShape()...)...)
	tensor.NewRNG(13).FillNorm(x, 0, 1)
	sh.InferShared(x) // warm: compiles the batch-8 plan
	if allocs := testing.AllocsPerRun(50, func() { sh.InferShared(x) }); allocs != 0 {
		t.Fatalf("warmed InferShared allocates %v/op, want 0", allocs)
	}
}

// TestInferBatchBypassesBatcher drives whole batches through the bulk
// entry point and checks the answers equal per-sample Submit results —
// the two paths share the checkpoint, so any divergence is a dispatch bug.
func TestInferBatchBypassesBatcher(t *testing.T) {
	net, _ := trainTinyHEP(t, 3)
	path := saveTinyHEP(t, net)
	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())
	lm, err := r.Load("tiny", path, Float32)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lm, Config{Workers: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 6
	in := rangeProd(lm.InShape())
	x := tensor.New(append([]int{n}, lm.InShape()...)...)
	tensor.NewRNG(17).FillNorm(x, 0, 1)

	y, err := srv.InferBatch(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Shape[0] != n {
		t.Fatalf("bulk output shape %v", y.Shape)
	}
	out := rangeProd(lm.OutShape())
	for s := 0; s < n; s++ {
		xi := tensor.New(lm.InShape()...)
		copy(xi.Data, x.Data[s*in:(s+1)*in])
		yi, err := srv.Submit(xi)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < out; j++ {
			if yi.Data[j] != y.Data[s*out+j] {
				t.Fatalf("sample %d logit %d: bulk %v vs online %v", s, j, y.Data[s*out+j], yi.Data[j])
			}
		}
	}

	// Shape policing.
	if _, err := srv.InferBatch(tensor.New(lm.InShape()...)); err == nil {
		t.Fatal("per-sample tensor accepted by the batch entry point")
	}
	bad := append([]int{2}, lm.InShape()...)
	bad[1]++
	if _, err := srv.InferBatch(tensor.New(bad...)); err == nil {
		t.Fatal("wrong trailing dims accepted")
	}
}

// TestInferBatchConcurrentAndClose exercises the bulk replica pool under
// concurrency (more callers than the worker cap, so some must block for a
// pooled replica) and pins the shutdown contract: Close waits for running
// bulk calls, later calls get ErrClosed.
func TestInferBatchConcurrentAndClose(t *testing.T) {
	net, _ := trainTinyHEP(t, 3)
	path := saveTinyHEP(t, net)
	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())
	lm, err := r.Load("tiny", path, Float32)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lm, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := tensor.New(append([]int{5}, lm.InShape()...)...)
			tensor.NewRNG(seed).FillNorm(x, 0, 1)
			for i := 0; i < 10; i++ {
				if _, err := srv.InferBatch(x); err != nil {
					t.Errorf("InferBatch: %v", err)
					return
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	srv.Close()
	x := tensor.New(append([]int{2}, lm.InShape()...)...)
	if _, err := srv.InferBatch(x); err != ErrClosed {
		t.Fatalf("InferBatch after Close: %v, want ErrClosed", err)
	}
}

func rangeProd(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
