package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"deep15pf/internal/perf"
)

// latWindow bounds the latency reservoir: quantiles are computed over the
// most recent latWindow completions, while counters cover the server's
// whole lifetime. 64k samples keeps a long-running server's snapshot cost
// flat without blunting the tail at demo scale.
const latWindow = 1 << 16

// metrics is the shared accounting the workers write into. One mutex for
// everything is deliberate: a record is tens of nanoseconds against an
// inference that is microseconds at minimum, and per-batch records amortise
// further.
type metrics struct {
	mu       sync.Mutex
	start    time.Time
	requests int64
	batches  int64
	maxBatch int
	inferSec float64
	flops    float64
	peakRate float64 // best flops/sec over a single batch
	lat      []float64
	latNext  int
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), lat: make([]float64, 0, 1024)}
}

// reset clears every counter and the latency reservoir and restarts the
// wall clock, so the next snapshot covers only what follows.
func (m *metrics) reset() {
	m.mu.Lock()
	m.start = time.Now()
	m.requests, m.batches, m.maxBatch = 0, 0, 0
	m.inferSec, m.flops, m.peakRate = 0, 0, 0
	m.lat = m.lat[:0]
	m.latNext = 0
	m.mu.Unlock()
}

// recordBatch accounts one completed inference batch and its members'
// end-to-end latencies (seconds).
func (m *metrics) recordBatch(size int, infer time.Duration, flops float64, lats []float64) {
	sec := infer.Seconds()
	m.mu.Lock()
	m.requests += int64(size)
	m.batches++
	if size > m.maxBatch {
		m.maxBatch = size
	}
	m.inferSec += sec
	m.flops += flops
	if sec > 0 {
		if r := flops / sec; r > m.peakRate {
			m.peakRate = r
		}
	}
	for _, l := range lats {
		if len(m.lat) < latWindow {
			m.lat = append(m.lat, l)
		} else {
			m.lat[m.latNext] = l
			m.latNext = (m.latNext + 1) % latWindow
		}
	}
	m.mu.Unlock()
}

// Stats is a point-in-time snapshot of a server's serving record.
type Stats struct {
	Requests  int64         // completed requests
	Batches   int64         // inference batches run
	MeanBatch float64       // requests per batch
	MaxBatch  int           // largest batch observed
	Wall      time.Duration // time since the server started
	// Throughput is completed requests per wall-clock second.
	Throughput float64
	// P50/P95/P99 are end-to-end request latencies (queue wait + batch
	// assembly + inference) over the recent-latency window.
	P50, P95, P99 time.Duration
	// InferSeconds is summed worker compute time; over Wall×workers it
	// gives the pool's duty cycle.
	InferSeconds float64
	// FLOPs is the total forward work served; MeanFlopRate divides it by
	// InferSeconds and PeakFlopRate is the best single batch, mirroring
	// the mean/peak split of internal/perf's §V methodology.
	FLOPs        float64
	MeanFlopRate float64
	PeakFlopRate float64
}

// snapshot computes a Stats from the live counters.
func (m *metrics) snapshot() Stats {
	m.mu.Lock()
	s := Stats{
		Requests:     m.requests,
		Batches:      m.batches,
		MaxBatch:     m.maxBatch,
		Wall:         time.Since(m.start),
		InferSeconds: m.inferSec,
		FLOPs:        m.flops,
		PeakFlopRate: m.peakRate,
	}
	lat := append([]float64(nil), m.lat...)
	m.mu.Unlock()

	if s.Batches > 0 {
		s.MeanBatch = float64(s.Requests) / float64(s.Batches)
	}
	if w := s.Wall.Seconds(); w > 0 {
		s.Throughput = float64(s.Requests) / w
	}
	if s.InferSeconds > 0 {
		s.MeanFlopRate = s.FLOPs / s.InferSeconds
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		s.P50 = quantile(lat, 0.50)
		s.P95 = quantile(lat, 0.95)
		s.P99 = quantile(lat, 0.99)
	}
	return s
}

// quantile reads the q-th quantile from sorted seconds as a Duration,
// using the nearest-rank method.
func quantile(sorted []float64, q float64) time.Duration {
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return time.Duration(sorted[i] * float64(time.Second))
}

// String renders the snapshot as a compact multi-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d in %.2fs  (%.0f req/s)\n", s.Requests, s.Wall.Seconds(), s.Throughput)
	fmt.Fprintf(&b, "batches  %d  mean size %.1f  max %d\n", s.Batches, s.MeanBatch, s.MaxBatch)
	fmt.Fprintf(&b, "latency  p50 %s  p95 %s  p99 %s\n",
		s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond))
	fmt.Fprintf(&b, "compute  %.2fs busy  %s mean  %s peak",
		s.InferSeconds, perf.FormatFlops(s.MeanFlopRate), perf.FormatFlops(s.PeakFlopRate))
	return b.String()
}
