package serve

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"deep15pf/internal/obs"
	"deep15pf/internal/perf"
)

// latWindow bounds the latency reservoir: counters cover the server's
// whole lifetime, while the quantile sample holds at most this many
// latencies. 64k samples keeps a long-running server's snapshot cost flat
// without blunting the tail at demo scale.
const latWindow = 1 << 16

// latencyBuckets are the registry histogram's upper bounds (seconds):
// 10µs to ~10s in half-decade steps — coarse operational visibility; the
// reservoir carries the precise quantiles.
var latencyBuckets = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10,
}

// metrics is the shared accounting the workers write into, built on the
// obs substrate: counters and gauges in a per-server obs.Registry (so the
// -debug-addr /metrics endpoint and the periodic dump read the same
// numbers the snapshot does) plus a latency reservoir for quantiles.
//
// One mutex still serialises recordBatch: a record is tens of nanoseconds
// against an inference that is microseconds at minimum, per-batch records
// amortise further, and the reservoir needs the serialisation anyway.
//
// The reservoir defaults to uniform (Algorithm R) sampling, so quantiles
// estimate the server's whole lifetime. The previous ring overwrite only
// ever reflected the most recent 64k completions once wrapped — a window
// masquerading as a lifetime sample. Config.WindowedLatency restores the
// windowed behaviour for callers who want exactly that (canary
// comparisons read recent behaviour, not history).
type metrics struct {
	mu    sync.Mutex
	start time.Time
	reg   *obs.Registry

	requests *obs.Counter
	batches  *obs.Counter
	maxBatch *obs.Gauge
	inferSec *obs.Gauge
	flops    *obs.Gauge
	peakRate *obs.Gauge // best flops/sec over a single batch
	latHist  *obs.Histogram
	lat      *obs.Reservoir
	windowed bool

	// Per-model views of the same traffic, named with the architecture the
	// server serves (serve.requests.model.<arch>, ...). In a one-model
	// server they duplicate the base instruments; their value is the model
	// zoo, where registries from several servers are scraped side by side
	// and the labels keep the workloads apart. Additive: the unlabelled base
	// names above are a stable interface and never change.
	mRequests *obs.Counter
	mBatches  *obs.Counter
	mInferSec *obs.Gauge
	mLatHist  *obs.Histogram
}

func newMetrics(windowed bool, model string) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		start:    time.Now(),
		reg:      reg,
		requests: reg.Counter("serve.requests"),
		batches:  reg.Counter("serve.batches"),
		maxBatch: reg.Gauge("serve.max_batch"),
		inferSec: reg.Gauge("serve.infer_seconds"),
		flops:    reg.Gauge("serve.flops"),
		peakRate: reg.Gauge("serve.peak_flop_rate"),
		latHist:  reg.Histogram("serve.latency_s", latencyBuckets),
		windowed: windowed,
	}
	if model != "" {
		m.mRequests = reg.Counter("serve.requests.model." + model)
		m.mBatches = reg.Counter("serve.batches.model." + model)
		m.mInferSec = reg.Gauge("serve.infer_seconds.model." + model)
		m.mLatHist = reg.Histogram("serve.latency_s.model."+model, latencyBuckets)
	}
	m.lat = newLatReservoir(windowed)
	return m
}

func newLatReservoir(windowed bool) *obs.Reservoir {
	if windowed {
		return obs.NewWindowedReservoir(latWindow)
	}
	// Fixed seed: replacement decisions are deterministic per process,
	// and the seed carries no statistical weight (splitmix64 scrambles).
	return obs.NewReservoir(latWindow, 0x15bf5eed)
}

// reset clears every counter and the latency reservoir and restarts the
// wall clock, so the next snapshot covers only what follows.
func (m *metrics) reset() {
	m.mu.Lock()
	m.start = time.Now()
	m.requests.Reset()
	m.batches.Reset()
	m.maxBatch.Set(0)
	m.inferSec.Set(0)
	m.flops.Set(0)
	m.peakRate.Set(0)
	if m.mRequests != nil {
		m.mRequests.Reset()
		m.mBatches.Reset()
		m.mInferSec.Set(0)
	}
	m.lat = newLatReservoir(m.windowed) // fresh sample AND fresh observation count
	m.mu.Unlock()
}

// recordBatch accounts one completed inference batch and its members'
// end-to-end latencies (seconds).
func (m *metrics) recordBatch(size int, infer time.Duration, flops float64, lats []float64) {
	sec := infer.Seconds()
	m.mu.Lock()
	m.requests.Add(int64(size))
	m.batches.Inc()
	m.maxBatch.Max(float64(size))
	m.inferSec.Add(sec)
	m.flops.Add(flops)
	if sec > 0 {
		m.peakRate.Max(flops / sec)
	}
	if m.mRequests != nil {
		m.mRequests.Add(int64(size))
		m.mBatches.Inc()
		m.mInferSec.Add(sec)
	}
	for _, l := range lats {
		m.lat.Add(l)
		m.latHist.Observe(l)
		if m.mLatHist != nil {
			m.mLatHist.Observe(l)
		}
	}
	m.mu.Unlock()
}

// Stats is a point-in-time snapshot of a server's serving record.
type Stats struct {
	Requests  int64         // completed requests
	Batches   int64         // inference batches run
	MeanBatch float64       // requests per batch
	MaxBatch  int           // largest batch observed
	Wall      time.Duration // time since the server started
	// Throughput is completed requests per wall-clock second.
	Throughput float64
	// P50/P95/P99 are end-to-end request latencies (queue wait + batch
	// assembly + inference): a uniform whole-lifetime sample by default,
	// the most recent latWindow completions with Config.WindowedLatency.
	P50, P95, P99 time.Duration
	// InferSeconds is summed worker compute time; over Wall×workers it
	// gives the pool's duty cycle.
	InferSeconds float64
	// FLOPs is the total forward work served; MeanFlopRate divides it by
	// InferSeconds and PeakFlopRate is the best single batch, mirroring
	// the mean/peak split of internal/perf's §V methodology.
	FLOPs        float64
	MeanFlopRate float64
	PeakFlopRate float64
}

// snapshot computes a Stats from the live instruments.
func (m *metrics) snapshot() Stats {
	m.mu.Lock()
	s := Stats{
		Requests:     m.requests.Value(),
		Batches:      m.batches.Value(),
		MaxBatch:     int(m.maxBatch.Value()),
		Wall:         time.Since(m.start),
		InferSeconds: m.inferSec.Value(),
		FLOPs:        m.flops.Value(),
		PeakFlopRate: m.peakRate.Value(),
	}
	lat := m.lat.Sorted()
	m.mu.Unlock()

	if s.Batches > 0 {
		s.MeanBatch = float64(s.Requests) / float64(s.Batches)
	}
	if w := s.Wall.Seconds(); w > 0 {
		s.Throughput = float64(s.Requests) / w
	}
	if s.InferSeconds > 0 {
		s.MeanFlopRate = s.FLOPs / s.InferSeconds
	}
	if len(lat) > 0 {
		s.P50 = quantile(lat, 0.50)
		s.P95 = quantile(lat, 0.95)
		s.P99 = quantile(lat, 0.99)
	}
	return s
}

// quantile reads the q-th quantile from sorted seconds as a Duration,
// using the nearest-rank method.
func quantile(sorted []float64, q float64) time.Duration {
	return time.Duration(obs.QuantileSorted(sorted, q) * float64(time.Second))
}

// String renders the snapshot as a compact multi-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d in %.2fs  (%.0f req/s)\n", s.Requests, s.Wall.Seconds(), s.Throughput)
	fmt.Fprintf(&b, "batches  %d  mean size %.1f  max %d\n", s.Batches, s.MeanBatch, s.MaxBatch)
	fmt.Fprintf(&b, "latency  p50 %s  p95 %s  p99 %s\n",
		s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond))
	fmt.Fprintf(&b, "compute  %.2fs busy  %s mean  %s peak",
		s.InferSeconds, perf.FormatFlops(s.MeanFlopRate), perf.FormatFlops(s.PeakFlopRate))
	return b.String()
}
