package serve

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deep15pf/internal/tensor"
)

// TestDrainCompletesInFlight is the graceful-drain contract: every request
// admitted before Close completes with a real answer, every submit racing
// in after Close gets the typed ErrClosed refusal, and nothing is ever
// silently dropped — the single-server half of the fleet's
// zero-dropped-requests guarantee.
func TestDrainCompletesInFlight(t *testing.T) {
	s, inputs := loadTinyServer(t, Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 2})

	const clients = 16
	var (
		completed atomic.Int64
		refused   atomic.Int64
		started   sync.WaitGroup
		wg        sync.WaitGroup
	)
	stop := make(chan struct{})
	started.Add(clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			first := true
			for {
				select {
				case <-stop:
					return
				default:
				}
				y, err := s.Submit(inputs[c%len(inputs)].X)
				if first {
					started.Done()
					first = false
				}
				switch {
				case err == nil:
					if y.Len() != 2 {
						t.Errorf("drained response has %d values", y.Len())
					}
					completed.Add(1)
				case errors.Is(err, ErrClosed):
					refused.Add(1)
					return
				default:
					t.Errorf("submit failed with untyped error: %v", err)
					return
				}
			}
		}(c)
	}
	started.Wait() // every client has at least one request through
	s.Close()      // drain: admitted requests complete, new ones bounce
	close(stop)
	wg.Wait()

	st := s.Stats()
	if got := completed.Load(); st.Requests != got {
		t.Fatalf("server counted %d requests, clients saw %d complete — a request was dropped across drain",
			st.Requests, got)
	}
	if completed.Load() < clients {
		t.Fatalf("only %d requests completed before drain", completed.Load())
	}
	if _, err := s.Submit(inputs[0].X); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain Submit returned %v, want ErrClosed", err)
	}
}

// TestDrainStopsGoroutines pins the leak half of the drain contract: after
// Close returns, the batcher and every worker have exited (the race
// detector in CI makes this meaningful — a live worker would race the
// test's teardown).
func TestDrainStopsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		s, inputs := loadTinyServer(t, Config{MaxBatch: 4, Workers: 4})
		if res := RunClosedLoop(s, inputs, 8, 64); res.Err != nil {
			t.Fatal(res.Err)
		}
		s.Close()
	}
	// Closed servers must not accumulate goroutines. Allow slack for
	// runtime background goroutines waking up during the test.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines grew %d -> %d across three server lifecycles", before, g)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitAsyncCompletes drives the callback entry point the network
// tier rides: responses arrive via cb with the caller's ctx, bitwise
// identical to the synchronous path, with no goroutine parked per request.
func TestSubmitAsyncCompletes(t *testing.T) {
	s, inputs := loadTinyServer(t, Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 2})

	want := make([][]float32, len(inputs))
	for i, in := range inputs {
		y, err := s.Submit(in.X)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append([]float32(nil), y.Data...)
	}

	type slot struct {
		i    int
		got  []float32
		done chan struct{}
	}
	slots := make([]*slot, len(inputs))
	cb := func(y *tensor.Tensor, ctx any) {
		sl := ctx.(*slot)
		sl.got = append(sl.got, y.Data...)
		close(sl.done)
	}
	for i, in := range inputs {
		slots[i] = &slot{i: i, done: make(chan struct{})}
		if err := s.SubmitAsync(in.X, cb, slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, sl := range slots {
		<-sl.done
		for j := range want[sl.i] {
			if sl.got[j] != want[sl.i][j] {
				t.Fatalf("async response %d logit %d: got %v want %v", sl.i, j, sl.got[j], want[sl.i][j])
			}
		}
	}

	// Shape policing and the closed refusal hold on the async path too.
	if err := s.SubmitAsync(tensor.New(3, 4, 4), cb, nil); err == nil {
		t.Fatal("SubmitAsync accepted a mis-shaped request")
	}
	if err := s.SubmitAsync(inputs[0].X, nil, nil); err == nil {
		t.Fatal("SubmitAsync accepted a nil callback")
	}
	s.Close()
	if err := s.SubmitAsync(inputs[0].X, cb, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain SubmitAsync returned %v, want ErrClosed", err)
	}
}

// TestOpenLoopLoadgen exercises the Poisson generator against a live
// server: every arrival completes, quantiles are populated, and the
// wall-clock respects the arrival schedule rather than the service rate.
func TestOpenLoopLoadgen(t *testing.T) {
	s, inputs := loadTinyServer(t, Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 2})
	const total, rate = 200, 4000.0
	res := RunOpenLoop(s, inputs, rate, total, 7)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Requests != total || res.Dropped != 0 {
		t.Fatalf("open loop completed %d/%d, dropped %d", res.Requests, total, res.Dropped)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("degenerate quantiles: p50 %v p99 %v", res.P50, res.P99)
	}
	// 200 arrivals at 4000/s take ~50ms in expectation; a closed-loop
	// misreading of the schedule would finish as fast as the server can
	// serve. Only a gross lower bound is asserted (CI scheduling noise).
	if res.Wall < 10*time.Millisecond {
		t.Fatalf("open-loop run finished in %v — arrivals are not being paced", res.Wall)
	}
}
