package serve

import (
	"path/filepath"
	"testing"

	"deep15pf/internal/climate"
	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// loadPair loads the same checkpoint twice — once with planning (the
// default) and once with the compiled-plan path disabled — and mints a
// replica from each.
func loadPair(t *testing.T, r *Registry, arch, path string) (planned, unplanned Model) {
	t.Helper()
	lmP, err := r.Load(arch, path, Float32)
	if err != nil {
		t.Fatal(err)
	}
	lmU, err := r.Load(arch, path, Float32)
	if err != nil {
		t.Fatal(err)
	}
	lmU.SetPlanning(false)
	if planned, err = lmP.NewReplica(); err != nil {
		t.Fatal(err)
	}
	if unplanned, err = lmU.NewReplica(); err != nil {
		t.Fatal(err)
	}
	return planned, unplanned
}

// TestPlannedHEPInferBitwiseIdentical is the serving half of the
// acceptance criterion: planned and unplanned forward must produce
// bitwise-identical logits on the HEP model, across the batch sizes a
// dynamic batcher actually produces.
func TestPlannedHEPInferBitwiseIdentical(t *testing.T) {
	net, _ := trainTinyHEP(t, 3)
	path := saveTinyHEP(t, net)
	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())
	planned, unplanned := loadPair(t, r, "tiny", path)

	rng := tensor.NewRNG(91)
	for _, n := range []int{1, 2, 3, 5, 8} {
		x := tensor.New(append([]int{n}, planned.InShape()...)...)
		rng.FillNorm(x, 0, 1)
		want := unplanned.Infer(x.Clone())
		got := planned.Infer(x)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("batch %d: logit %d diverges: %v vs %v", n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestPlannedClimateInferBitwiseIdentical covers the branching climate
// replica (encoder plan + three head plans + packed response).
func TestPlannedClimateInferBitwiseIdentical(t *testing.T) {
	cfg := climate.ModelConfig{
		Name: "tiny-climate", Size: 16,
		EncChannels: []int{6, 8}, EncStrides: []int{2, 2},
		DecChannels: []int{6, climate.NumChannels}, WithDecoder: true,
	}
	net := climate.BuildNet(cfg, tensor.NewRNG(2))
	path := filepath.Join(t.TempDir(), "climate.d15w")
	if err := nn.SaveFile(path, net.Params()); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	RegisterClimate(r, "tiny-climate", cfg)
	planned, unplanned := loadPair(t, r, "tiny-climate", path)

	rng := tensor.NewRNG(93)
	for _, n := range []int{1, 3, 4} {
		x := tensor.New(append([]int{n}, planned.InShape()...)...)
		rng.FillNorm(x, 0, 1)
		want := unplanned.Infer(x.Clone())
		got := planned.Infer(x)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("batch %d: output %d diverges: %v vs %v", n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestPlannedInferAllocsBounded pins the serving-path allocation win: a
// warmed planned replica's Infer allocates only the response tensor it
// hands the worker (3 objects: tensor, shape, data), independent of model
// depth, where the unplanned path allocates per layer.
func TestPlannedInferAllocsBounded(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	net, _ := trainTinyHEP(t, 3)
	path := saveTinyHEP(t, net)
	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())
	planned, unplanned := loadPair(t, r, "tiny", path)

	rng := tensor.NewRNG(95)
	x := tensor.New(append([]int{8}, planned.InShape()...)...)
	rng.FillNorm(x, 0, 1)
	planned.Infer(x) // warm: compiles the batch-8 plan
	got := testing.AllocsPerRun(50, func() { planned.Infer(x) })
	if got > 3 {
		t.Fatalf("warmed planned Infer allocates %v objects/op, want <= 3 (the response tensor)", got)
	}
	legacy := testing.AllocsPerRun(50, func() { unplanned.Infer(x) })
	if legacy <= got {
		t.Fatalf("unplanned path allocates %v/op, planned %v/op — plans should strictly reduce allocations", legacy, got)
	}
}
