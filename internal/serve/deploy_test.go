package serve

import (
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deep15pf/internal/ckpt"
	"deep15pf/internal/hep"
	"deep15pf/internal/tensor"
)

// publishVersion trains the tiny HEP net a little further and saves it as
// the store's next version under the given arch name, returning the
// manifest.
func publishVersion(t *testing.T, store *ckpt.Store, arch string, steps int) ckpt.Manifest {
	t.Helper()
	net, _ := trainTinyHEP(t, steps)
	m, err := store.Save(&ckpt.Snapshot{Step: steps, Arch: arch, Params: net.Params()})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newTinyDeployment builds a store holding one version and a deployment
// over it.
func newTinyDeployment(t *testing.T, cfg DeployConfig) (*Deployment, *ckpt.Store) {
	t.Helper()
	store, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	publishVersion(t, store, "tiny", 1)
	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())
	d, err := NewDeployment(r, "tiny", Float32, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, store
}

func deployInput(seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	x := tensor.New(hep.Channels, 8, 8)
	rng.FillNorm(x, 0, 1)
	return x
}

// TestDeploymentHotSwapZeroDroppedRequests is the tentpole gate: a closed
// loop of clients hammers the deployment while new checkpoint versions
// land and cut over; every single request must complete.
func TestDeploymentHotSwapZeroDroppedRequests(t *testing.T) {
	d, store := newTinyDeployment(t, DeployConfig{Server: Config{MaxBatch: 8, Workers: 2}})
	defer d.Close()
	if v := d.CurrentVersion(); v != 1 {
		t.Fatalf("initial version %d", v)
	}

	const clients, total = 16, 4000
	inputs := make([]*tensor.Tensor, 8)
	for i := range inputs {
		inputs[i] = deployInput(uint64(i))
	}
	var (
		next      atomic.Int64
		completed atomic.Int64
		failed    atomic.Int64
		wg        sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				if _, err := d.Submit(inputs[i%len(inputs)]); err != nil {
					failed.Add(1)
				} else {
					completed.Add(1)
				}
			}
		}()
	}
	// Publish two new versions mid-flight and poll them in.
	for v := 2; v <= 3; v++ {
		for next.Load() < int64(total*(v-1)/3) {
			time.Sleep(time.Millisecond)
		}
		publishVersion(t, store, "tiny", v)
		if ok, err := d.PollOnce(); err != nil || !ok {
			t.Errorf("poll for version %d: ok=%v err=%v", v, ok, err)
		}
	}
	wg.Wait()

	if f := failed.Load(); f != 0 {
		t.Errorf("%d requests failed across hot swaps", f)
	}
	if c := completed.Load(); c != total {
		t.Errorf("completed %d of %d requests", c, total)
	}
	if v := d.CurrentVersion(); v != 3 {
		t.Errorf("final version %d, want 3", v)
	}
	if s := d.Swaps(); s != 2 {
		t.Errorf("%d swaps recorded, want 2", s)
	}
}

// TestDeploymentCanaryRoutesFractionThenPromotes: the canary serves its
// configured share with its own metrics, and auto-promotes after the
// clean-response threshold.
func TestDeploymentCanaryRoutesFractionThenPromotes(t *testing.T) {
	d, store := newTinyDeployment(t, DeployConfig{
		Server:         Config{MaxBatch: 4, Workers: 1},
		Canary:         0.25,
		CanaryRequests: 200, // above the first measurement burst
	})
	defer d.Close()
	publishVersion(t, store, "tiny", 2)
	if ok, err := d.PollOnce(); err != nil || !ok {
		t.Fatalf("poll: ok=%v err=%v", ok, err)
	}
	if d.CurrentVersion() != 1 || d.CanaryVersion() != 2 {
		t.Fatalf("after poll: current %d canary %d", d.CurrentVersion(), d.CanaryVersion())
	}

	x := deployInput(1)
	const burst = 400
	for i := 0; i < burst; i++ {
		if _, err := d.Submit(x); err != nil {
			t.Fatal(err)
		}
	}
	// The stride router sends exactly floor(i·0.25) of i requests to the
	// canary until promotion flips the pointers; after 200 clean canary
	// responses (at request ~800... the 200th canary response lands at
	// request 800 with frac .25 — burst of 400 yields 100) the canary is
	// still staged. Check the per-version split first.
	vs := d.Versions()
	if len(vs) != 2 || !vs[1].Canary {
		t.Fatalf("versions: %+v", vs)
	}
	canaryShare := float64(vs[1].Stats.Requests) / float64(vs[0].Stats.Requests+vs[1].Stats.Requests)
	if canaryShare < 0.2 || canaryShare > 0.3 {
		t.Errorf("canary served %.2f of traffic, want ≈0.25", canaryShare)
	}
	if vs[1].Stats.P99 <= 0 || vs[0].Stats.Throughput <= 0 {
		t.Errorf("per-version metrics empty: %+v", vs)
	}

	// Drive past the auto-promote threshold.
	for i := 0; i < 600 && d.CanaryVersion() != 0; i++ {
		if _, err := d.Submit(x); err != nil {
			t.Fatal(err)
		}
	}
	if d.CurrentVersion() != 2 || d.CanaryVersion() != 0 {
		t.Errorf("after threshold: current %d canary %d", d.CurrentVersion(), d.CanaryVersion())
	}
	if d.Swaps() != 1 {
		t.Errorf("swaps %d, want 1", d.Swaps())
	}
}

// TestDeploymentRollbackKeepsServing: a rolled-back canary disappears
// without a blip; the live version keeps serving.
func TestDeploymentRollbackKeepsServing(t *testing.T) {
	d, store := newTinyDeployment(t, DeployConfig{
		Server: Config{MaxBatch: 4, Workers: 1},
		Canary: 0.5, CanaryRequests: 1 << 30, // never auto-promote
	})
	defer d.Close()
	publishVersion(t, store, "tiny", 2)
	if _, err := d.PollOnce(); err != nil {
		t.Fatal(err)
	}
	x := deployInput(2)
	for i := 0; i < 50; i++ {
		if _, err := d.Submit(x); err != nil {
			t.Fatal(err)
		}
	}
	d.Rollback()
	if d.CurrentVersion() != 1 || d.CanaryVersion() != 0 {
		t.Fatalf("after rollback: current %d canary %d", d.CurrentVersion(), d.CanaryVersion())
	}
	for i := 0; i < 50; i++ {
		if _, err := d.Submit(x); err != nil {
			t.Fatalf("request after rollback: %v", err)
		}
	}
	if d.Rejected() != 1 {
		t.Errorf("rejected %d, want 1 (the rollback)", d.Rejected())
	}
}

// TestDeploymentRejectsWrongArchVersion: a version published under another
// architecture is refused (counted, error recorded) and the live version
// keeps serving; a later correct version still lands.
func TestDeploymentRejectsWrongArchVersion(t *testing.T) {
	d, store := newTinyDeployment(t, DeployConfig{Server: Config{MaxBatch: 4, Workers: 1}})
	defer d.Close()
	publishVersion(t, store, "other-arch", 2)
	if ok, err := d.PollOnce(); ok || err == nil || !strings.Contains(err.Error(), "other-arch") {
		t.Fatalf("wrong-arch poll: ok=%v err=%v", ok, err)
	}
	if d.CurrentVersion() != 1 || d.Rejected() != 1 {
		t.Fatalf("after rejection: current %d rejected %d", d.CurrentVersion(), d.Rejected())
	}
	if d.Err() == nil {
		t.Fatal("rejection not recorded")
	}
	// Still serving.
	if _, err := d.Submit(deployInput(3)); err != nil {
		t.Fatal(err)
	}
	// A correct version afterwards swaps in.
	publishVersion(t, store, "tiny", 3)
	if ok, err := d.PollOnce(); err != nil || !ok {
		t.Fatalf("good version after rejection: ok=%v err=%v", ok, err)
	}
	if d.CurrentVersion() != 3 {
		t.Errorf("current %d, want 3", d.CurrentVersion())
	}
}

// TestDeploymentWatchPicksUpVersions: the background watcher (the -watch
// flag's machinery) hot-reloads without any explicit polling.
func TestDeploymentWatchPicksUpVersions(t *testing.T) {
	d, store := newTinyDeployment(t, DeployConfig{
		Server: Config{MaxBatch: 4, Workers: 1},
		Poll:   2 * time.Millisecond,
	})
	defer d.Close()
	d.Watch()
	publishVersion(t, store, "tiny", 2)
	deadline := time.Now().Add(5 * time.Second)
	for d.CurrentVersion() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("watcher never swapped to version 2 (current %d, err %v)", d.CurrentVersion(), d.Err())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := d.Submit(deployInput(4)); err != nil {
		t.Fatal(err)
	}
}

// TestDeploymentRequiresAVersion: an empty store cannot deploy.
func TestDeploymentRequiresAVersion(t *testing.T) {
	store, _ := ckpt.Open(t.TempDir())
	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())
	if _, err := NewDeployment(r, "tiny", Float32, store, DeployConfig{}); err == nil {
		t.Fatal("deployment over an empty store must fail")
	}
}

// TestDeploymentRejectsCorruptVersionOnce: a bit-rotted newest version is
// diagnosed and counted exactly once — not re-read and re-verified on
// every poll tick — and a later clean version still lands.
func TestDeploymentRejectsCorruptVersionOnce(t *testing.T) {
	d, store := newTinyDeployment(t, DeployConfig{Server: Config{MaxBatch: 4, Workers: 1}})
	defer d.Close()
	m := publishVersion(t, store, "tiny", 2)
	wpath := store.WeightsPath(m.Version)
	raw, err := os.ReadFile(wpath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(wpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, err := d.PollOnce(); ok || err == nil {
		t.Fatalf("corrupt version polled in: ok=%v err=%v", ok, err)
	}
	if d.Rejected() != 1 || d.CurrentVersion() != 1 {
		t.Fatalf("after corrupt poll: rejected %d current %d", d.Rejected(), d.CurrentVersion())
	}
	// Second poll must be a cheap no-op, not a second rejection.
	if ok, err := d.PollOnce(); ok || err != nil {
		t.Fatalf("corrupt version reconsidered: ok=%v err=%v", ok, err)
	}
	if d.Rejected() != 1 {
		t.Fatalf("corrupt version rejected twice: %d", d.Rejected())
	}
	publishVersion(t, store, "tiny", 3)
	if ok, err := d.PollOnce(); err != nil || !ok {
		t.Fatalf("clean version after corruption: ok=%v err=%v", ok, err)
	}
	if d.CurrentVersion() != 3 {
		t.Errorf("current %d, want 3", d.CurrentVersion())
	}
}

// TestDeploymentCloseWinsOverInFlightInstall: a version install that
// completes after Close must not resurrect the deployment — the incoming
// server is shut down, Submit keeps returning ErrClosed.
func TestDeploymentCloseWinsOverInFlightInstall(t *testing.T) {
	d, store := newTinyDeployment(t, DeployConfig{Server: Config{MaxBatch: 4, Workers: 1}})
	m, ok, err := store.Poll(0)
	if err != nil || !ok || m.Version != 1 {
		t.Fatalf("poll: %+v ok=%v err=%v", m, ok, err)
	}
	v, berr := d.build(m)
	if berr != nil {
		t.Fatal(berr)
	}
	d.Close()
	d.cutover(v) // the in-flight install landing late
	if cur := d.CurrentVersion(); cur != 0 {
		t.Fatalf("closed deployment serves version %d", cur)
	}
	if _, err := d.Submit(deployInput(9)); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
	// The orphaned server must be closed too: its Submit rejects.
	if _, err := v.srv.Submit(deployInput(9)); err == nil {
		t.Fatal("late-install server left running after Close")
	}
}
