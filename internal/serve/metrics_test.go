package serve

import (
	"testing"
	"time"

	"deep15pf/internal/obs"
)

// TestUniformLatencySamplingIsUnbiased is the reservoir-fix regression:
// feed more than latWindow latencies where the first 3/4 are fast and the
// last 1/4 slow. The old ring overwrite retained only the most recent
// 64k completions once wrapped, so its "lifetime" p50 saw mostly the slow
// tail. The uniform reservoir's p50 must stay fast.
func TestUniformLatencySamplingIsUnbiased(t *testing.T) {
	const total = 2 * latWindow // wraps the old ring
	feed := func(m *metrics) {
		lats := make([]float64, 64)
		for sent := 0; sent < total; {
			for i := range lats {
				if sent+i < (3*total)/4 {
					lats[i] = 1e-4 // fast three quarters
				} else {
					lats[i] = 1e-1 // slow final quarter
				}
			}
			m.recordBatch(len(lats), time.Microsecond, 0, lats)
			sent += len(lats)
		}
	}

	uni := newMetrics(false, "")
	feed(uni)
	s := uni.snapshot()
	if s.Requests != total {
		t.Fatalf("requests = %d, want %d", s.Requests, total)
	}
	// 3/4 of the stream is fast: a uniform sample's p50 is the fast value.
	// (The old ring's retained window at this point is half slow, so its
	// p50 was the slow value — the bias this fix removes.)
	if got := s.P50.Seconds(); got > 1e-3 {
		t.Errorf("uniform p50 = %v — sample is biased toward the recent slow tail", s.P50)
	}
	// The tail is real: p95 must see the slow quarter.
	if got := s.P95.Seconds(); got < 1e-2 {
		t.Errorf("uniform p95 = %v — slow tail missing from sample", s.P95)
	}

	// Windowed mode keeps the old semantics on purpose: only the most
	// recent latWindow completions (all slow) shape the quantiles.
	win := newMetrics(true, "")
	feed(win)
	if got := win.snapshot().P50.Seconds(); got < 1e-2 {
		t.Errorf("windowed p50 = %v, want the recent slow value", got)
	}
}

// TestMetricsResetClearsEverything: counters, gauges and the reservoir
// all restart (including the reservoir's observation count — a stale
// count would skew Algorithm R's retention probability).
func TestMetricsResetClearsEverything(t *testing.T) {
	m := newMetrics(false, "")
	m.recordBatch(4, time.Millisecond, 100, []float64{1e-3, 2e-3, 3e-3, 4e-3})
	m.reset()
	s := m.snapshot()
	if s.Requests != 0 || s.Batches != 0 || s.MaxBatch != 0 || s.FLOPs != 0 ||
		s.InferSeconds != 0 || s.PeakFlopRate != 0 || s.P50 != 0 {
		t.Fatalf("reset left state behind: %+v", s)
	}
	if n := m.lat.Count(); n != 0 {
		t.Fatalf("reservoir count %d after reset", n)
	}
}

// TestServerRegistryExposesCounters: the Metrics() registry carries the
// same numbers the Stats snapshot reports.
func TestServerRegistryExposesCounters(t *testing.T) {
	s, inputs := loadTinyServer(t, Config{MaxBatch: 4, Workers: 1})
	for _, in := range inputs[:8] {
		if _, err := s.Submit(in.X); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counters["serve.requests"]; got != 8 {
		t.Errorf("registry serve.requests = %d, want 8", got)
	}
	if snap.Counters["serve.batches"] < 2 {
		t.Errorf("registry serve.batches = %d, want >= 2", snap.Counters["serve.batches"])
	}
	if h := snap.Histograms["serve.latency_s"]; h.Count != 8 {
		t.Errorf("latency histogram count = %d, want 8", h.Count)
	}
	if stats := s.Stats(); stats.Requests != 8 {
		t.Errorf("Stats.Requests = %d, want 8", stats.Requests)
	}
}

// TestServerTraceRecordsRequestPhases: a traced server leaves per-worker
// lanes with Queue, Batch and Infer spans whose ordering is sane (queue
// precedes inference on the same batch).
func TestServerTraceRecordsRequestPhases(t *testing.T) {
	tr := obs.NewTracer(0)
	s, inputs := loadTinyServer(t, Config{MaxBatch: 4, Workers: 2, Trace: tr})
	for round := 0; round < 3; round++ {
		for _, in := range inputs[:8] {
			if _, err := s.Submit(in.X); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d lanes, want 2 serve workers", len(snap))
	}
	var counts [obs.NumPhases]int
	for _, ls := range snap {
		if ls.Name != "serve.w0" && ls.Name != "serve.w1" {
			t.Errorf("unexpected lane %q", ls.Name)
		}
		for _, sp := range ls.Spans {
			counts[sp.Phase]++
			if sp.Dur() < 0 {
				t.Errorf("%s: negative span %+v", ls.Name, sp)
			}
		}
	}
	for _, ph := range []obs.Phase{obs.PhaseQueue, obs.PhaseBatch, obs.PhaseInfer} {
		if counts[ph] == 0 {
			t.Errorf("no %s spans recorded", ph)
		}
	}
	if counts[obs.PhaseQueue] != counts[obs.PhaseInfer] || counts[obs.PhaseBatch] != counts[obs.PhaseInfer] {
		t.Errorf("span counts diverge per batch: queue=%d batch=%d infer=%d",
			counts[obs.PhaseQueue], counts[obs.PhaseBatch], counts[obs.PhaseInfer])
	}
}

// TestServerRegistryCarriesPerModelLabels: the same traffic is also
// accounted under architecture-labelled instrument names, so a model zoo
// scraping several servers' registries can tell the workloads apart. The
// unlabelled base names stay untouched (the test above pins them).
func TestServerRegistryCarriesPerModelLabels(t *testing.T) {
	s, inputs := loadTinyServer(t, Config{MaxBatch: 4, Workers: 1})
	for _, in := range inputs[:8] {
		if _, err := s.Submit(in.X); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counters["serve.requests.model.tiny"]; got != 8 {
		t.Errorf("serve.requests.model.tiny = %d, want 8", got)
	}
	if got := snap.Counters["serve.batches.model.tiny"]; got < 2 || got != snap.Counters["serve.batches"] {
		t.Errorf("serve.batches.model.tiny = %d, want the base count %d",
			got, snap.Counters["serve.batches"])
	}
	if h := snap.Histograms["serve.latency_s.model.tiny"]; h.Count != 8 {
		t.Errorf("per-model latency histogram count = %d, want 8", h.Count)
	}
	s.ResetStats()
	if got := s.Metrics().Snapshot().Counters["serve.requests.model.tiny"]; got != 0 {
		t.Errorf("per-model request counter %d after reset, want 0", got)
	}
}
