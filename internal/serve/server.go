package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"deep15pf/internal/obs"
	"deep15pf/internal/tensor"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("serve: server closed")

// Config parameterises a Server.
type Config struct {
	// MaxBatch caps how many requests one forward pass coalesces.
	// 1 disables batching (every request runs alone — the baseline the
	// batching study compares against). Default 32.
	MaxBatch int
	// MaxLinger bounds how long a partially filled batch waits for
	// company after its first request arrives. 0 takes the default
	// (500µs); a negative value disables lingering entirely — dispatch
	// whatever is queued.
	MaxLinger time.Duration
	// Workers is the replica pool size. Each worker owns one model
	// replica, so memory scales linearly. Default GOMAXPROCS.
	Workers int
	// QueueDepth is the request queue capacity; Submit blocks once it
	// fills (closed-loop backpressure rather than load shedding).
	// Default 4×MaxBatch×Workers.
	QueueDepth int
	// WindowedLatency switches the latency quantiles from the default
	// uniform whole-lifetime reservoir to a most-recent-64k window —
	// recent behaviour rather than history (canary comparisons).
	WindowedLatency bool
	// Trace attaches the server to a phase tracer: each worker records
	// Queue (earliest enqueue → dispatch), Batch (assembly) and Infer
	// spans on its own "serve.w<i>" lane. nil records nothing.
	Trace *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxLinger < 0 {
		c.MaxLinger = 0
	} else if c.MaxLinger == 0 {
		c.MaxLinger = 500 * time.Microsecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch * c.Workers
	}
	return c
}

// Server is a running inference service over one loaded model: a request
// queue, a dynamic batcher, and a pool of replica-owning workers.
type Server struct {
	cfg     Config
	model   *LoadedModel
	inShape []int
	inLen   int

	queue    chan *pending
	dispatch chan []*pending
	metrics  *metrics
	// idleWorkers counts replicas waiting for work; the batcher stops
	// lingering the moment capacity would otherwise sit idle.
	idleWorkers atomic.Int32

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup

	// Bulk-path replica pool (bulk.go): minted lazily on the first
	// InferBatch, capped at cfg.Workers, disjoint from the online workers'
	// replicas so offline scoring never contends for a latency-serving
	// model instance.
	bulkPool   chan Model
	bulkMu     sync.Mutex
	bulkMinted int

	batcherWG sync.WaitGroup
	workerWG  sync.WaitGroup
}

// NewServer mints cfg.Workers replicas from m and starts the batcher and
// worker pool. The server is immediately ready for Submit.
func NewServer(m *LoadedModel, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		model:    m,
		inShape:  m.InShape(),
		queue:    make(chan *pending, cfg.QueueDepth),
		dispatch: make(chan []*pending, cfg.Workers),
		metrics:  newMetrics(cfg.WindowedLatency, m.ModelArch),
		bulkPool: make(chan Model, cfg.Workers),
	}
	s.inLen = 1
	for _, d := range s.inShape {
		s.inLen *= d
	}
	for i := 0; i < cfg.Workers; i++ {
		rep, err := m.NewReplica()
		if err != nil {
			return nil, err
		}
		s.workerWG.Add(1)
		go s.worker(rep, cfg.Trace.Lane(fmt.Sprintf("serve.w%d", i)))
	}
	s.batcherWG.Add(1)
	go s.batcher()
	return s, nil
}

// Submit runs one sample through the service and blocks until its result is
// ready (or the queue has room, whichever gates first — a full queue is
// backpressure, not an error). x must have the model's per-sample input
// shape and must not be mutated until Submit returns. The returned tensor
// is owned by the caller and valid indefinitely; it is a capacity-capped
// view into a per-batch output buffer, so holding it pins that batch's
// output allocation (MaxBatch·outLen floats at most).
func (s *Server) Submit(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Len() != s.inLen || !sameShape(x.Shape, s.inShape) {
		return nil, fmt.Errorf("serve: request shape %v, model wants %v", x.Shape, s.inShape)
	}
	p := pendingPool.Get().(*pending)
	p.x, p.enq = x, time.Now()
	if err := s.enqueue(p); err != nil {
		return nil, err
	}
	r := <-p.done
	s.inflight.Done()
	p.x = nil
	pendingPool.Put(p)
	return r.y, r.err
}

// SubmitAsync is the submit-by-request-id entry point the network tier
// (internal/netserve) rides: it enqueues x and returns as soon as the
// request is accepted; the worker that serves the batch invokes
// cb(y, ctx) with the response. Unlike Submit, no goroutine is parked per
// request — a connection reader can pipeline thousands of in-flight
// requests, keyed by whatever id it stashed in ctx.
//
// Contract: cb runs on a worker goroutine, so it must be fast and must
// not Submit back into the same server (it would deadlock a full queue).
// x must keep the model's input shape and stays owned by the server until
// cb fires — the batch assembly copy has happened by then, so cb is the
// earliest point x may be recycled. A full queue blocks SubmitAsync
// (backpressure, exactly like Submit); after Close has begun it returns
// ErrClosed and cb is never invoked.
func (s *Server) SubmitAsync(x *tensor.Tensor, cb func(y *tensor.Tensor, ctx any), ctx any) error {
	if x.Len() != s.inLen || !sameShape(x.Shape, s.inShape) {
		return fmt.Errorf("serve: request shape %v, model wants %v", x.Shape, s.inShape)
	}
	if cb == nil {
		return fmt.Errorf("serve: SubmitAsync needs a completion callback")
	}
	p := pendingPool.Get().(*pending)
	p.x, p.enq, p.cb, p.ctx = x, time.Now(), cb, ctx
	return s.enqueue(p)
}

// enqueue admits p to the request queue under the closed check, recycling
// the envelope on refusal.
func (s *Server) enqueue(p *pending) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		p.x, p.cb, p.ctx = nil, nil, nil
		pendingPool.Put(p)
		return ErrClosed
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	s.queue <- p
	return nil
}

// Stats snapshots the serving record so far.
func (s *Server) Stats() Stats { return s.metrics.snapshot() }

// Metrics exposes the server's live instrument registry (counters,
// gauges, the latency histogram) — what -debug-addr's /metrics endpoint
// and the periodic dump read.
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// ResetStats clears the serving record — counters and the latency
// reservoir — and restarts the stats wall clock. Benchmarks call it
// between warmup and measurement so quantiles cover only steady state
// (warmup holds the first-request plan compiles, which would otherwise
// pollute the tail).
func (s *Server) ResetStats() { s.metrics.reset() }

// Model returns the loaded model this server serves.
func (s *Server) Model() *LoadedModel { return s.model }

// Close stops accepting requests, waits for every in-flight request to
// complete, and shuts the batcher and workers down. Safe to call twice.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait() // no submitter is between queue send and done receive
	close(s.queue)
	s.batcherWG.Wait()
	close(s.dispatch)
	s.workerWG.Wait()
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
