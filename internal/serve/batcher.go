package serve

import (
	"runtime"
	"sync"
	"time"

	"deep15pf/internal/tensor"
)

// pending is one queued request: the per-sample input, its enqueue time for
// end-to-end latency accounting, and a one-slot future the owning worker
// completes. The buffered channel means workers never block on slow
// clients. Asynchronous submits (SubmitAsync) carry a callback instead:
// the worker invokes cb(y, ctx) in place of the channel send and recycles
// the envelope itself, so a network frontend pays no goroutine and no
// channel hop per request.
type pending struct {
	x    *tensor.Tensor
	enq  time.Time
	done chan result
	cb   func(y *tensor.Tensor, ctx any)
	ctx  any
}

type result struct {
	y   *tensor.Tensor
	err error
}

// pendingPool recycles request envelopes (and their one-slot channels)
// across Submits. A pending is returned to the pool only by the submitter,
// after it has received the result, so a pooled channel is always empty.
var pendingPool = sync.Pool{New: func() any { return &pending{done: make(chan result, 1)} }}

// batcher owns the serving latency/throughput trade-off. It blocks for the
// first request of a batch (an idle server adds zero latency), then
// collects followers until the batch is full or the linger budget is spent,
// and hands the coalesced batch to the worker pool. Under closed-loop load
// the queue refills while workers run, so batches fill without ever
// sleeping the full linger; linger only binds near the arrival-rate floor,
// where it caps the latency a lone request pays waiting for company.
//
// The policy is work-conserving: lingering is only worth it while every
// worker is busy (the wait costs nothing — no replica could run the batch
// anyway). The moment the queue drains while a worker sits idle, waiting
// for stragglers would trade certain idle capacity for hypothetical
// arrivals, so the batch departs at once. Without this rule a closed-loop
// population smaller than MaxBatch can never fill a batch and every
// request would eat the whole linger.
func (s *Server) batcher() {
	defer s.batcherWG.Done()
	maxBatch := s.cfg.MaxBatch
	linger := s.cfg.MaxLinger
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := append(make([]*pending, 0, maxBatch), first)
		if maxBatch > 1 {
			batch = s.collect(batch, maxBatch, linger)
		}
		s.dispatch <- batch
	}
}

// collect fills batch from the queue until maxBatch, the linger deadline,
// or — queue drained with a worker idle — the work-conserving early exit.
// "Queue empty" is only trusted after one scheduling yield: on a loaded
// machine it usually just means the clients about to submit have not held
// the CPU since the last batch completed, and departing without the yield
// collapses every batch to the handful of requests that raced in first.
func (s *Server) collect(batch []*pending, maxBatch int, linger time.Duration) []*pending {
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	yielded := false
	for len(batch) < maxBatch {
		select {
		case p, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, p)
			yielded = false
			continue
		default:
		}
		if linger <= 0 {
			return batch
		}
		if s.idleWorkers.Load() > 0 {
			// A worker is idle: lingering would waste certain capacity
			// on hypothetical arrivals. Depart after one grace yield.
			if yielded {
				return batch
			}
			yielded = true
			runtime.Gosched()
			continue
		}
		// All workers busy: waiting costs nothing until the deadline.
		if timer == nil {
			timer = time.NewTimer(linger)
		}
		select {
		case p, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, p)
		case <-timer.C:
			return batch
		}
	}
	return batch
}
