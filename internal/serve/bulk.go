package serve

import (
	"fmt"

	"deep15pf/internal/tensor"
)

// MaxBulkBatch caps the leading dimension InferBatch accepts. Plans size
// their arena slabs to the largest batch bucket they have compiled, so an
// unbounded batch would let one oversized request pin an arbitrarily large
// slab for the server's lifetime. 4096 comfortably covers a shard's worth
// of samples per call while keeping the slab bounded.
const MaxBulkBatch = 4096

// InferBatch is the offline fast path: it runs a whole [N, InShape...]
// batch through a dedicated bulk replica, bypassing the dynamic batcher
// entirely — no queue, no linger timer, no per-request envelopes. The
// returned [N, OutShape...] tensor is owned by the caller.
//
// Bulk replicas live in their own lazily-minted pool (capped at
// cfg.Workers), so concurrent InferBatch callers — the netserve backend
// runs one goroutine per in-flight bulk request — scale across replicas
// without ever touching the latency-serving workers' instances. The call
// participates in the server's in-flight accounting: Close waits for
// running InferBatch calls, and calls after Close has begun return
// ErrClosed.
func (s *Server) InferBatch(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != len(s.inShape)+1 || x.Shape[0] < 1 {
		return nil, fmt.Errorf("serve: bulk batch shape %v, model wants [N,%v]", x.Shape, s.inShape)
	}
	for i, d := range s.inShape {
		if x.Shape[i+1] != d {
			return nil, fmt.Errorf("serve: bulk batch shape %v, model wants [N,%v]", x.Shape, s.inShape)
		}
	}
	if x.Shape[0] > MaxBulkBatch {
		return nil, fmt.Errorf("serve: bulk batch %d exceeds cap %d", x.Shape[0], MaxBulkBatch)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	rep, err := s.bulkReplica()
	if err != nil {
		return nil, err
	}
	y := rep.Infer(x)
	s.bulkPool <- rep
	return y, nil
}

// bulkReplica hands out a pooled bulk replica, minting a new one while the
// pool is below its cap. Past the cap it blocks until a running InferBatch
// returns one — natural backpressure at cfg.Workers concurrent batches.
func (s *Server) bulkReplica() (Model, error) {
	select {
	case rep := <-s.bulkPool:
		return rep, nil
	default:
	}
	s.bulkMu.Lock()
	if s.bulkMinted < cap(s.bulkPool) {
		s.bulkMinted++
		s.bulkMu.Unlock()
		rep, err := s.model.NewReplica()
		if err != nil {
			s.bulkMu.Lock()
			s.bulkMinted--
			s.bulkMu.Unlock()
			return nil, err
		}
		return rep, nil
	}
	s.bulkMu.Unlock()
	return <-s.bulkPool, nil
}
