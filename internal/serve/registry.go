package serve

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"sync"

	"deep15pf/internal/astro"
	"deep15pf/internal/climate"
	"deep15pf/internal/hep"
	"deep15pf/internal/nn"
	"deep15pf/internal/quant"
	"deep15pf/internal/tensor"
)

// weightQuantSeed seeds the stochastic weight rounding at checkpoint load
// for adapters still on the emulated int8 path (climate). It is fixed so
// every replica of an int8 model quantises identically — which worker
// serves a request must not change the answer. The HEP adapter's int8 path
// is real (nn.QuantPlan) and uses deterministic round-to-nearest instead.
const weightQuantSeed = 0x8b1d

// Builder constructs a fresh, randomly initialised replica of a named
// architecture at the requested precision. The initial weights are
// irrelevant (a checkpoint overwrites them); what matters is that parameter
// names and sizes reproduce the architecture the checkpoint was trained on,
// which the D15W loader validates blob by blob.
type Builder func(prec Precision) Model

// Registry maps architecture names to builders. Checkpoints are loaded *by
// architecture*: the registry instantiates the named architecture and
// streams the D15W blob into its parameters, refusing mismatched names or
// sizes, so a checkpoint cannot silently serve through the wrong network.
// Each architecture may also carry a workload (problem) label — hep,
// climate, astro — which CheckManifest holds against checkpoint manifests
// so a model zoo cannot route one science problem's weights through
// another's serving stack even when the architectures happen to coincide.
type Registry struct {
	mu    sync.RWMutex
	archs map[string]archEntry
}

// archEntry is one registered architecture: its builder plus the workload
// label ("" for problem-agnostic registrations).
type archEntry struct {
	build   Builder
	problem string
}

// ModelInfo is one Models() row: an architecture and its workload label.
type ModelInfo struct {
	Arch    string
	Problem string // "" when registered without a workload label
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{archs: make(map[string]archEntry)}
}

// RegisterArch adds a named architecture with no workload label. Registering
// a duplicate name panics: two builders disagreeing about one name is a
// configuration bug.
func (r *Registry) RegisterArch(name string, b Builder) {
	r.RegisterProblemArch(name, "", b)
}

// RegisterProblemArch adds a named architecture labelled with the workload
// it solves. CheckManifest enforces the label against checkpoint manifests.
func (r *Registry) RegisterProblemArch(name, problem string, b Builder) {
	if name == "" || b == nil {
		panic("serve: RegisterArch needs a name and a builder")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.archs[name]; dup {
		panic(fmt.Sprintf("serve: architecture %q registered twice", name))
	}
	r.archs[name] = archEntry{build: b, problem: problem}
}

// Archs lists the registered architecture names, sorted.
func (r *Registry) Archs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.archs))
	for n := range r.archs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Models lists the registered architectures with their workload labels,
// sorted by architecture name — the zoo inventory a multi-model server
// prints at startup.
func (r *Registry) Models() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.archs))
	for n, e := range r.archs {
		out = append(out, ModelInfo{Arch: n, Problem: e.problem})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Arch < out[j].Arch })
	return out
}

// ProblemOf returns the workload label arch was registered with ("" for an
// unlabelled or unknown architecture).
func (r *Registry) ProblemOf(arch string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.archs[arch].problem
}

// CheckManifest verifies a checkpoint manifest against the named
// architecture's registration: the manifest's arch must match the name, and
// its workload label must match the registration's. Empty labels on either
// side pass — pre-PR-10 stores carry no problem field, and unlabelled
// registrations opt out — so the guard tightens only where both ends state
// their workload.
func (r *Registry) CheckManifest(arch string, manifestArch, manifestProblem string) error {
	if manifestArch != "" && manifestArch != arch {
		return fmt.Errorf("serve: checkpoint is arch %q, wanted %q", manifestArch, arch)
	}
	if p := r.ProblemOf(arch); p != "" && manifestProblem != "" && p != manifestProblem {
		return fmt.Errorf("serve: checkpoint is for problem %q, architecture %q serves problem %q — refusing a cross-workload model",
			manifestProblem, arch, p)
	}
	return nil
}

// RegisterHEP registers the supervised HEP classifier (§III-A) at the given
// scale under name.
func RegisterHEP(r *Registry, name string, cfg hep.ModelConfig) {
	r.RegisterProblemArch(name, "hep", func(prec Precision) Model {
		return newNetModel(name, hep.BuildNet(cfg, tensor.NewRNG(0)), prec)
	})
}

// RegisterAstro registers the transfer-learned astronomy classifier (the
// PR 10 workload) at the given scale under name. The astro net is a plain
// nn.Network like the HEP classifier, so it serves through the same planned
// (and int8-capable) adapter.
func RegisterAstro(r *Registry, name string, cfg astro.ModelConfig) {
	r.RegisterProblemArch(name, "astro", func(prec Precision) Model {
		return newNetModel(name, astro.BuildNet(cfg, tensor.NewRNG(0)), prec)
	})
}

// RegisterClimate registers the semi-supervised climate detector (§III-B)
// at the given scale under name. Served inference runs the encoder and the
// three score heads only — the reconstruction decoder exists to regularise
// training and is dead weight at serving time — but the replica still
// carries the decoder parameters so checkpoints from training load intact.
func RegisterClimate(r *Registry, name string, cfg climate.ModelConfig) {
	r.RegisterProblemArch(name, "climate", func(prec Precision) Model {
		return newClimateModel(name, climate.BuildNet(cfg, tensor.NewRNG(0)), prec)
	})
}

// DefaultRegistry returns a registry with the six stock architectures:
// hep-paper, hep-small, climate-paper, climate-small, astro-paper,
// astro-small.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	RegisterHEP(r, "hep-paper", hep.PaperConfig())
	RegisterHEP(r, "hep-small", hep.SmallConfig())
	RegisterClimate(r, "climate-paper", climate.PaperConfig())
	RegisterClimate(r, "climate-small", climate.SmallConfig())
	RegisterAstro(r, "astro-paper", astro.PaperConfig())
	RegisterAstro(r, "astro-small", astro.SmallConfig())
	return r
}

// LoadedModel is a checkpoint bound to an architecture, ready to mint
// per-worker inference replicas. The checkpoint bytes are cached so replica
// minting never re-reads the filesystem.
type LoadedModel struct {
	ModelArch string
	Prec      Precision

	build   Builder
	ckpt    []byte
	noPlans bool
	calib   []float32 // frozen activation stats for int8 replicas (nil = dynamic)

	mu     sync.Mutex
	cached Model // the validation replica from Load, handed to the first NewReplica

	inShape, outShape []int
	flopsPerSample    int64
	paramBytes        int64
	weightScales      map[string][]float32 // per-channel int8 scales, captured at Load
}

// SetPlanning switches compiled-execution-plan use for replicas minted
// after the call (the float32 path; the int8 datapath is always layer-by-
// layer so it can round-trip activations between layers). Planning is on
// by default; the off switch exists for A/B measurement — the serving
// benchmark drives the same load through both settings to report the
// allocation and throughput delta.
func (m *LoadedModel) SetPlanning(enabled bool) {
	m.mu.Lock()
	m.noPlans = !enabled
	m.cached = nil // the validation replica predates the setting
	m.mu.Unlock()
}

// SetQuantized is the int8 A/B toggle: it switches the precision applied
// to replicas minted after the call, so one LoadedModel can drive the same
// load through both datapaths. Like SetPlanning it drops the cached
// validation replica, which predates the setting.
func (m *LoadedModel) SetQuantized(enabled bool) {
	m.mu.Lock()
	if enabled {
		m.Prec = Int8
	} else {
		m.Prec = Float32
	}
	m.cached = nil
	m.mu.Unlock()
}

// Calibrate runs fp32 calibration batches through one replica and freezes
// the observed per-layer activation ranges into every int8 replica minted
// afterwards (nil-calibration replicas fall back to dynamic per-batch
// scales). The replica used for calibration is cached for the next
// NewReplica, already carrying the frozen scales.
func (m *LoadedModel) Calibrate(xs ...*tensor.Tensor) error {
	if len(xs) == 0 {
		return fmt.Errorf("serve: Calibrate needs at least one batch")
	}
	rep, err := m.NewReplica()
	if err != nil {
		return err
	}
	qc, ok := rep.(quantControl)
	if !ok {
		return fmt.Errorf("serve: architecture %q has no native int8 datapath to calibrate", m.ModelArch)
	}
	var calib []float32
	for _, x := range xs {
		s := qc.calibrate(x)
		if calib == nil {
			calib = s
		} else {
			nn.MergeCalibration(calib, s)
		}
	}
	qc.setCalibration(calib)
	m.mu.Lock()
	m.calib = calib
	m.cached = rep
	m.mu.Unlock()
	return nil
}

// WeightScales returns the per-output-channel int8 scales of every
// quantizable weight tensor, keyed by parameter name — stored alongside
// the checkpoint at Load so the int8 grid is inspectable without minting
// a replica. Nil for architectures without a native int8 datapath.
func (m *LoadedModel) WeightScales() map[string][]float32 { return m.weightScales }

// planControl is implemented by replica adapters whose inference path can
// run compiled plans.
type planControl interface{ setPlanning(bool) }

// quantControl is implemented by replica adapters with a native int8
// datapath (quantized plans). Adapters without it fall back to the
// emulated weight-round-trip path under Precision Int8.
type quantControl interface {
	calibrate(x *tensor.Tensor) []float32
	setCalibration([]float32)
}

// weightScaler exposes the per-channel int8 weight scales an adapter's
// native datapath would use; Load snapshots them into the LoadedModel.
type weightScaler interface {
	weightScales() map[string][]float32
}

// Load reads a D15W checkpoint from path and binds it to the named
// architecture, validating the fit by instantiating one replica. The
// returned LoadedModel mints additional replicas on demand.
func (r *Registry) Load(arch, path string, prec Precision) (*LoadedModel, error) {
	r.mu.RLock()
	entry, ok := r.archs[arch]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown architecture %q (have %v)", arch, r.Archs())
	}
	build := entry.build
	ckpt, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reading checkpoint: %w", err)
	}
	m := &LoadedModel{ModelArch: arch, Prec: prec, build: build, ckpt: ckpt}
	probe, err := m.NewReplica()
	if err != nil {
		return nil, err
	}
	m.inShape = probe.InShape()
	m.outShape = probe.OutShape()
	m.flopsPerSample = probe.FwdFLOPsPerSample()
	for _, p := range probe.Params() {
		m.paramBytes += p.Bytes()
	}
	if ws, ok := probe.(weightScaler); ok {
		m.weightScales = ws.weightScales()
	}
	m.mu.Lock()
	m.cached = probe
	m.mu.Unlock()
	return m, nil
}

// NewReplica instantiates the architecture, installs the checkpoint, applies
// the precision policy, and releases gradient accumulators. Each replica is
// single-goroutine; the server creates one per worker.
func (m *LoadedModel) NewReplica() (Model, error) {
	m.mu.Lock()
	if c := m.cached; c != nil {
		m.cached = nil
		m.mu.Unlock()
		return c, nil
	}
	noPlans := m.noPlans
	prec := m.Prec
	calib := m.calib
	m.mu.Unlock()

	model := m.build(prec)
	if err := nn.LoadWeights(bytes.NewReader(m.ckpt), model.Params()); err != nil {
		return nil, fmt.Errorf("serve: checkpoint does not fit architecture %q: %w", m.ModelArch, err)
	}
	if prec == Int8 {
		if qc, ok := model.(quantControl); ok {
			// Native int8 datapath: fp32 weights stay exact; the quantized
			// plan derives its s8 copies (and per-channel scales) from them
			// at compile time, frozen to the loaded calibration if any.
			qc.setCalibration(calib)
		} else {
			rng := tensor.NewRNG(weightQuantSeed)
			for _, p := range model.Params() {
				quant.RoundTripTensor(p.W, rng, true)
			}
		}
	}
	// Gradients are dropped before any plan compiles: replicas hold
	// inference plans only, which by construction retain no gradient or
	// backward buffers (see nn.Compile).
	nn.ReleaseGradients(model.Params())
	if pc, ok := model.(planControl); ok {
		pc.setPlanning(!noPlans)
	}
	return model, nil
}

// InShape returns the per-sample input shape requests must carry.
func (m *LoadedModel) InShape() []int { return m.inShape }

// OutShape returns the per-sample output shape responses carry.
func (m *LoadedModel) OutShape() []int { return m.outShape }

// FwdFLOPsPerSample returns the forward flop cost of one sample.
func (m *LoadedModel) FwdFLOPsPerSample() int64 { return m.flopsPerSample }

// ParamBytes returns the float32 parameter footprint of one replica (the
// int8 path models precision, not storage; see Precision).
func (m *LoadedModel) ParamBytes() int64 { return m.paramBytes }

// ---- nn.Network adapter (HEP classifier) ----

type netModel struct {
	arch     string
	net      *nn.Network
	prec     Precision
	planning bool
	plans    *nn.PlanCache      // lazily built; one plan per batch-size bucket
	calib    []float32          // frozen activation ranges (nil = dynamic)
	qplans   *nn.QuantPlanCache // int8 plans, lazily built per bucket
}

func newNetModel(arch string, net *nn.Network, prec Precision) *netModel {
	return &netModel{arch: arch, net: net, prec: prec, planning: true}
}

func (m *netModel) setPlanning(on bool) { m.planning = on }
func (m *netModel) Arch() string        { return m.arch }
func (m *netModel) InShape() []int      { return append([]int(nil), m.net.InShape...) }
func (m *netModel) OutShape() []int     { return m.net.OutShape() }
func (m *netModel) Params() []*nn.Param { return m.net.Params() }
func (m *netModel) FwdFLOPsPerSample() int64 {
	return m.net.FLOPsPerSample().Fwd
}

func (m *netModel) calibrate(x *tensor.Tensor) []float32 {
	return nn.CalibrateActivations(m.net, x)
}

func (m *netModel) setCalibration(c []float32) {
	m.calib = c
	m.qplans = nil // compiled plans predate the new scales
}

func (m *netModel) weightScales() map[string][]float32 {
	return nn.WeightScales(m.net)
}

func (m *netModel) Infer(x *tensor.Tensor) *tensor.Tensor {
	if m.prec == Int8 {
		// Real int8 datapath: conv and dense run on the u8·s8 integer GEMM
		// through a quantized plan (per-channel weight scales, activation
		// scales frozen by calibration or derived per batch), bucketed by
		// batch size like the float plans. The plan owns its output, so it
		// is copied out for the worker, same as the planned float path.
		if m.qplans == nil {
			m.qplans = nn.NewQuantPlanCache(m.net, m.calib, nil)
		}
		return m.qplans.Forward(x).Clone()
	}
	if !m.planning {
		return m.net.Infer(x)
	}
	// Planned float32 path: the replica keeps one compiled plan per
	// batch-size bucket the batcher produces; a warmed plan forward
	// allocates nothing. The plan owns its output, so the response the
	// worker may slice into per-request views is copied out — one
	// allocation per batch, same as the legacy path's output tensor, with
	// every per-layer allocation gone.
	if m.plans == nil {
		m.plans = nn.NewPlanCache(m.net, false, nil)
	}
	return m.plans.Forward(x).Clone()
}

// InferShared implements SharedInferer: the planned forward without the
// defensive output copy. Falls back to the layer-by-layer path (which
// allocates its own output anyway) when planning is off.
func (m *netModel) InferShared(x *tensor.Tensor) *tensor.Tensor {
	if m.prec == Int8 {
		if m.qplans == nil {
			m.qplans = nn.NewQuantPlanCache(m.net, m.calib, nil)
		}
		return m.qplans.Forward(x)
	}
	if !m.planning {
		return m.net.Infer(x)
	}
	if m.plans == nil {
		m.plans = nn.NewPlanCache(m.net, false, nil)
	}
	return m.plans.Forward(x)
}

// ---- climate.Net adapter (extreme-weather detector) ----

// climateOutChannels is the packed head layout: confidence logit, one
// channel per event class, four box-geometry channels.
const climateOutChannels = 1 + int(climate.NumClasses) + 4

type climateModel struct {
	arch     string
	net      *climate.Net
	prec     Precision
	rng      *tensor.RNG
	planning bool
	// Served inference is encoder + three heads; each gets a plan cache
	// over one shared arena so the per-batch-size buckets recycle slabs.
	encPlans, confPlans, classPlans, boxPlans *nn.PlanCache
}

func newClimateModel(arch string, net *climate.Net, prec Precision) *climateModel {
	return &climateModel{arch: arch, net: net, prec: prec, rng: tensor.NewRNG(weightQuantSeed + 2), planning: true}
}

func (m *climateModel) setPlanning(on bool) { m.planning = on }
func (m *climateModel) Arch() string        { return m.arch }
func (m *climateModel) InShape() []int      { return append([]int(nil), m.net.Encoder.InShape...) }
func (m *climateModel) Params() []*nn.Param { return m.net.Params() }

// OutShape packs the three head outputs on the detection grid into one
// tensor: channel 0 is the confidence logit, channels 1..NumClasses are
// class logits, the last four are box geometry (tx, ty, log w, log h).
func (m *climateModel) OutShape() []int {
	g := m.net.GridSize
	return []int{climateOutChannels, g, g}
}

// FwdFLOPsPerSample counts encoder plus heads — the decoder is skipped at
// serving time (roughly halving per-request cost for the paper config).
func (m *climateModel) FwdFLOPsPerSample() int64 {
	total := m.net.Encoder.FLOPsPerSample().Fwd
	feat := m.net.Encoder.OutShape()
	for _, h := range []*nn.Conv2D{m.net.ConfHead, m.net.ClassHead, m.net.BoxHead} {
		total += h.FLOPs(feat).Fwd
	}
	return total
}

func (m *climateModel) Infer(x *tensor.Tensor) *tensor.Tensor {
	if m.prec == Int8 {
		quant.RoundTripTensor(x, m.rng, true)
	}
	var feat, conf, class, box *tensor.Tensor
	if m.planning && m.prec != Int8 {
		// Planned path: encoder and heads each run a per-batch-size plan
		// over a shared arena. Only the packed response below allocates.
		if m.encPlans == nil {
			m.encPlans = nn.NewPlanCache(m.net.Encoder, false, nil)
			arena := m.encPlans.Arena()
			featShape := m.net.Encoder.OutShape()
			head := func(name string, l nn.Layer) *nn.PlanCache {
				return nn.NewPlanCache(nn.NewNetwork(m.arch+"-"+name+"-plan", featShape...).Add(l), false, arena)
			}
			m.confPlans = head("conf", m.net.ConfHead)
			m.classPlans = head("class", m.net.ClassHead)
			m.boxPlans = head("box", m.net.BoxHead)
		}
		feat = m.encPlans.Forward(x)
		conf = m.confPlans.Forward(feat)
		class = m.classPlans.Forward(feat)
		box = m.boxPlans.Forward(feat)
	} else {
		feat = m.net.Encoder.Forward(x, false)
		if m.prec == Int8 {
			quant.RoundTripTensor(feat, m.rng, true)
		}
		conf = m.net.ConfHead.Forward(feat, false)
		class = m.net.ClassHead.Forward(feat, false)
		box = m.net.BoxHead.Forward(feat, false)
		if m.prec == Int8 {
			quant.RoundTripTensor(conf, m.rng, true)
			quant.RoundTripTensor(class, m.rng, true)
			quant.RoundTripTensor(box, m.rng, true)
		}
	}

	n := x.Shape[0]
	g := m.net.GridSize
	plane := g * g
	k := int(climate.NumClasses)
	out := tensor.New(n, climateOutChannels, g, g)
	per := climateOutChannels * plane
	for s := 0; s < n; s++ {
		dst := out.Data[s*per : (s+1)*per]
		copy(dst[:plane], conf.Data[s*plane:(s+1)*plane])
		copy(dst[plane:(1+k)*plane], class.Data[s*k*plane:(s+1)*k*plane])
		copy(dst[(1+k)*plane:], box.Data[s*4*plane:(s+1)*4*plane])
	}
	return out
}
