package serve

import (
	"time"

	"deep15pf/internal/obs"
	"deep15pf/internal/tensor"
)

// worker owns one model replica for its lifetime (replicas cache forward
// state, so they are strictly single-goroutine). It assembles each
// dispatched batch into one tensor, runs a single forward pass, scatters
// the outputs to the per-request futures, and records metrics once per
// batch — the amortisation that makes batching pay even before the model
// sees it.
//
// With tracing on, each batch leaves three spans on the worker's lane:
// Queue (the oldest member's enqueue → dispatch receipt — how long the
// batcher let demand sit), Batch (assembly copy) and Infer (the forward
// pass). lane is nil when untraced; every span site is one branch.
func (s *Server) worker(rep Model, lane *obs.Lane) {
	defer s.workerWG.Done()
	s.idleWorkers.Add(1)
	tracer := lane.Tracer()
	outShape := rep.OutShape()
	outLen := 1
	for _, d := range outShape {
		outLen *= d
	}
	flopsPerSample := float64(rep.FwdFLOPsPerSample())
	lats := make([]float64, 0, s.cfg.MaxBatch)
	batchNo := 0

	for batch := range s.dispatch {
		s.idleWorkers.Add(-1)
		lane.SetIter(batchNo)
		batchNo++
		n := len(batch)
		// Queue span: from the earliest enqueue in the batch to now. The
		// enqueue stamps were taken by Submit, so the span is recorded
		// with explicit endpoints rather than Begin/End.
		if tracer != nil {
			earliest := batch[0].enq
			for _, p := range batch[1:] {
				if p.enq.Before(earliest) {
					earliest = p.enq
				}
			}
			lane.Record(obs.PhaseQueue, tracer.At(earliest), tracer.Now())
		}
		lane.Begin(obs.PhaseBatch)
		x := tensor.New(append([]int{n}, s.inShape...)...)
		for i, p := range batch {
			copy(x.Data[i*s.inLen:(i+1)*s.inLen], p.x.Data)
		}
		lane.End(obs.PhaseBatch)
		lane.Begin(obs.PhaseInfer)
		t0 := time.Now()
		y := rep.Infer(x)
		infer := time.Since(t0)
		lane.End(obs.PhaseInfer)

		// Responses are views into the batch output (one allocation per
		// batch, not per request); the worker never touches y again. The
		// three-index slice caps capacity at the request's own segment so
		// no caller can reslice into a neighbour's result.
		done := time.Now()
		lats = lats[:0]
		for i, p := range batch {
			out := tensor.FromSlice(y.Data[i*outLen:(i+1)*outLen:(i+1)*outLen], outShape...)
			lats = append(lats, done.Sub(p.enq).Seconds())
			if p.cb != nil {
				// Async request: complete via callback and recycle the
				// envelope here — there is no submitter goroutine to do it.
				cb, ctx := p.cb, p.ctx
				p.x, p.cb, p.ctx = nil, nil, nil
				pendingPool.Put(p)
				cb(out, ctx)
				s.inflight.Done()
				continue
			}
			p.done <- result{y: out}
		}
		s.metrics.recordBatch(n, infer, flopsPerSample*float64(n), lats)
		s.idleWorkers.Add(1)
	}
}
