package serve

import (
	"time"

	"deep15pf/internal/tensor"
)

// worker owns one model replica for its lifetime (replicas cache forward
// state, so they are strictly single-goroutine). It assembles each
// dispatched batch into one tensor, runs a single forward pass, scatters
// the outputs to the per-request futures, and records metrics once per
// batch — the amortisation that makes batching pay even before the model
// sees it.
func (s *Server) worker(rep Model) {
	defer s.workerWG.Done()
	s.idleWorkers.Add(1)
	outShape := rep.OutShape()
	outLen := 1
	for _, d := range outShape {
		outLen *= d
	}
	flopsPerSample := float64(rep.FwdFLOPsPerSample())
	lats := make([]float64, 0, s.cfg.MaxBatch)

	for batch := range s.dispatch {
		s.idleWorkers.Add(-1)
		n := len(batch)
		x := tensor.New(append([]int{n}, s.inShape...)...)
		for i, p := range batch {
			copy(x.Data[i*s.inLen:(i+1)*s.inLen], p.x.Data)
		}
		t0 := time.Now()
		y := rep.Infer(x)
		infer := time.Since(t0)

		// Responses are views into the batch output (one allocation per
		// batch, not per request); the worker never touches y again. The
		// three-index slice caps capacity at the request's own segment so
		// no caller can reslice into a neighbour's result.
		done := time.Now()
		lats = lats[:0]
		for i, p := range batch {
			out := tensor.FromSlice(y.Data[i*outLen:(i+1)*outLen:(i+1)*outLen], outShape...)
			lats = append(lats, done.Sub(p.enq).Seconds())
			p.done <- result{y: out}
		}
		s.metrics.recordBatch(n, infer, flopsPerSample*float64(n), lats)
		s.idleWorkers.Add(1)
	}
}
