package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"deep15pf/internal/tensor"
)

// loadTinyServer trains, checkpoints, and loads the tiny HEP model, then
// starts a server with the given batching config.
func loadTinyServer(t *testing.T, cfg Config) (*Server, []*LoadInput) {
	t.Helper()
	net, ds := trainTinyHEP(t, 4)
	path := saveTinyHEP(t, net)
	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())
	lm, err := r.Load("tiny", path, Float32)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	s, err := NewServer(lm, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(s.Close)

	shape := ds.Images.Shape
	per := shape[1] * shape[2] * shape[3]
	inputs := make([]*LoadInput, shape[0])
	for i := range inputs {
		inputs[i] = &LoadInput{
			X: tensor.FromSlice(ds.Images.Data[i*per:(i+1)*per], shape[1], shape[2], shape[3]),
			Check: func(y *tensor.Tensor) error {
				if y.Len() != 2 {
					return fmt.Errorf("want 2 logits, got shape %v", y.Shape)
				}
				return nil
			},
		}
	}
	return s, inputs
}

// TestServerServesConcurrentRequests: many concurrent submitters all get
// correct, per-request answers, and the batcher actually coalesces.
func TestServerServesConcurrentRequests(t *testing.T) {
	s, inputs := loadTinyServer(t, Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 2})

	// Ground truth from a dedicated replica, batch of one each time.
	ref, err := s.Model().NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float32, len(inputs))
	for i, in := range inputs {
		y := ref.Infer(tensor.FromSlice(append([]float32(nil), in.X.Data...), append([]int{1}, s.Model().InShape()...)...))
		want[i] = append([]float32(nil), y.Data...)
	}

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(inputs))
	for round := 0; round < rounds; round++ {
		for i, in := range inputs {
			wg.Add(1)
			go func(i int, in *LoadInput) {
				defer wg.Done()
				y, err := s.Submit(in.X)
				if err != nil {
					errs <- err
					return
				}
				for j := range want[i] {
					if y.Data[j] != want[i][j] {
						errs <- fmt.Errorf("request %d logit %d: got %v want %v", i, j, y.Data[j], want[i][j])
						return
					}
				}
			}(i, in)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Requests != rounds*int64(len(inputs)) {
		t.Fatalf("stats counted %d requests, served %d", st.Requests, rounds*len(inputs))
	}
	if st.Batches >= st.Requests {
		t.Fatalf("no batching happened: %d batches for %d requests", st.Batches, st.Requests)
	}
	if st.MaxBatch > 8 {
		t.Fatalf("batch of %d exceeds MaxBatch 8", st.MaxBatch)
	}
	if st.P99 <= 0 || st.MeanFlopRate <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
}

// TestServerBatchOne: MaxBatch=1 must serve strictly one request per batch
// (the unbatched baseline of the throughput study).
func TestServerBatchOne(t *testing.T) {
	s, inputs := loadTinyServer(t, Config{MaxBatch: 1, Workers: 1})
	res := RunClosedLoop(s, inputs, 4, 200)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	st := s.Stats()
	if st.MaxBatch != 1 || st.Batches != st.Requests {
		t.Fatalf("MaxBatch=1 server batched: %+v", st)
	}
}

// TestLingerFliesSolo: a lone request must not wait out the full linger
// against an empty queue forever — it departs at the deadline.
func TestLingerFliesSolo(t *testing.T) {
	s, inputs := loadTinyServer(t, Config{MaxBatch: 32, MaxLinger: 5 * time.Millisecond, Workers: 1})
	start := time.Now()
	if _, err := s.Submit(inputs[0].X); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("lone request took %v", d)
	}
	if st := s.Stats(); st.Requests != 1 || st.Batches != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestSubmitRejectsWrongShape(t *testing.T) {
	s, _ := loadTinyServer(t, Config{MaxBatch: 4, Workers: 1})
	if _, err := s.Submit(tensor.New(3, 4, 4)); err == nil {
		t.Fatal("Submit accepted a mis-shaped request")
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	s, inputs := loadTinyServer(t, Config{MaxBatch: 4, Workers: 1})
	res := RunClosedLoop(s, inputs, 8, 100)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	s.Close()
	if _, err := s.Submit(inputs[0].X); err != ErrClosed {
		t.Fatalf("Submit after Close: %v", err)
	}
	s.Close() // second Close must be a no-op
	if st := s.Stats(); st.Requests != 100 {
		t.Fatalf("lost requests across Close: %+v", st)
	}
}
