// Package serve is the inference side of the train/serve divide: a
// request-queueing, dynamically-batching serving engine over the trained
// models this repository produces. Training (internal/core) optimises
// samples/second at fixed batch shape; serving optimises requests/second
// at bounded tail latency for requests that arrive one at a time. The
// classic resolution — the one every production inference system from TF
// Serving onward uses — is dynamic batching: queue individual requests,
// coalesce them into a tensor batch under a max-batch-size / max-linger
// policy, run one forward pass, and scatter the results back to per-request
// futures.
//
// The pieces:
//
//   - Registry (registry.go) maps architecture names to builders and loads
//     D15W checkpoints (internal/nn/checkpoint.go) into inference replicas
//     of the HEP or climate networks, optionally through the int8
//     stochastic-rounding path of internal/quant;
//   - the batcher (batcher.go) owns the request queue and the
//     latency/throughput trade-off;
//   - the worker pool (worker.go) runs one model replica per goroutine —
//     replicas are not shareable because layers cache forward state;
//   - metrics (metrics.go) tracks p50/p95/p99 end-to-end latency, batch
//     occupancy, and served flop rates in the style of internal/perf.
//
// cmd/deepserve wires a closed-loop load generator to all of it and
// reproduces the batching throughput study; examples/serving is the
// smallest end-to-end tour.
package serve

import (
	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// Precision selects the serving datapath.
type Precision int

const (
	// Float32 serves with the checkpoint's native float32 weights.
	Float32 Precision = iota
	// Int8 round-trips weights (once, at load) and activations (at every
	// parameterised-layer boundary) through internal/quant's int8
	// stochastic-rounding codec, so the pipeline computes what an int8
	// weight/activation datapath would: 4x smaller replica weights at a
	// small, measurable accuracy cost (cmd/deepserve -int8 reports logit
	// agreement against the float path).
	Int8
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	if p == Int8 {
		return "int8"
	}
	return "float32"
}

// Model is one servable inference replica. Implementations cache forward
// state between calls (im2col buffers and the like), so a Model instance
// must only ever be used by a single goroutine; the worker pool mints one
// replica per worker through LoadedModel.NewReplica.
type Model interface {
	// Arch names the architecture the replica instantiates.
	Arch() string
	// InShape is the per-sample input shape, e.g. [3,224,224].
	InShape() []int
	// OutShape is the per-sample output shape, e.g. [2] class logits.
	OutShape() []int
	// Infer runs a forward pass over a [N, InShape...] batch and returns
	// the [N, OutShape...] outputs. It must not retain x.
	Infer(x *tensor.Tensor) *tensor.Tensor
	// Params exposes the parameter blobs (for checkpoint loading).
	Params() []*nn.Param
	// FwdFLOPsPerSample is the forward-pass flop cost of one sample, the
	// unit the metrics use to convert batch timings into served flop
	// rates.
	FwdFLOPsPerSample() int64
}

// SharedInferer is the throughput-path extension of Model: InferShared
// returns the forward pass's plan-owned output directly, valid only until
// the replica's next forward. Online serving cannot use it — workers slice
// responses into per-request views that outlive the batch, hence Infer's
// defensive copy — but offline bulk scoring consumes each batch before
// submitting the next, so the copy (the online path's one residual
// per-batch allocation) is pure waste there. Same single-goroutine
// contract as Model; implemented by replicas whose datapath runs compiled
// plans (the HEP adapter, fp32 and int8).
type SharedInferer interface {
	Model
	// InferShared runs a [N, InShape...] batch and returns the
	// [N, OutShape...] output owned by the replica's plan. The caller must
	// finish with it (or copy) before the next InferShared/Infer call and
	// must not mutate it.
	InferShared(x *tensor.Tensor) *tensor.Tensor
}
