package serve

import (
	"strings"
	"testing"

	"deep15pf/internal/astro"
	"deep15pf/internal/ckpt"
)

// TestRegistryModelsAndProblems pins the zoo inventory: every stock
// architecture is listed, sorted, and carries its workload label.
func TestRegistryModelsAndProblems(t *testing.T) {
	r := DefaultRegistry()
	models := r.Models()
	want := map[string]string{
		"astro-paper": "astro", "astro-small": "astro",
		"climate-paper": "climate", "climate-small": "climate",
		"hep-paper": "hep", "hep-small": "hep",
	}
	if len(models) != len(want) {
		t.Fatalf("Models() returned %d entries, want %d: %v", len(models), len(want), models)
	}
	for i, m := range models {
		if i > 0 && models[i-1].Arch >= m.Arch {
			t.Fatalf("Models() not sorted: %q before %q", models[i-1].Arch, m.Arch)
		}
		if want[m.Arch] != m.Problem {
			t.Fatalf("arch %q labelled problem %q, want %q", m.Arch, m.Problem, want[m.Arch])
		}
	}
	if p := r.ProblemOf("astro-small"); p != "astro" {
		t.Fatalf("ProblemOf(astro-small) = %q", p)
	}
	if p := r.ProblemOf("no-such-arch"); p != "" {
		t.Fatalf("ProblemOf(unknown) = %q, want empty", p)
	}
}

// TestRegistryCheckManifest is the satellite-1 contract: a checkpoint whose
// manifest names a different workload than the architecture's registration
// is refused with a clear error; empty labels (pre-PR-10 stores, unlabelled
// registrations) stay permissive.
func TestRegistryCheckManifest(t *testing.T) {
	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())
	RegisterAstro(r, "atiny", astro.ModelConfig{Name: "atiny", ImageSize: 8, Filters: 4, ConvUnits: 2, Classes: 3})
	r.RegisterArch("plain", func(prec Precision) Model { return nil })

	cases := []struct {
		name                  string
		arch, mArch, mProblem string
		wantErr               string
	}{
		{"matching problem", "tiny", "tiny", "hep", ""},
		{"empty manifest problem (old store)", "tiny", "tiny", "", ""},
		{"empty manifest arch", "tiny", "", "hep", ""},
		{"unlabelled registration", "plain", "plain", "climate", ""},
		{"cross-workload model", "tiny", "tiny", "astro", "cross-workload"},
		{"astro arch fed a hep checkpoint", "atiny", "atiny", "hep", "cross-workload"},
		{"arch mismatch", "tiny", "other", "hep", `arch "other"`},
	}
	for _, tc := range cases {
		err := r.CheckManifest(tc.arch, tc.mArch, tc.mProblem)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want one containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestDeploymentRefusesCrossProblemCheckpoint is the regression test for the
// mismatch path end-to-end: a published version stamped with the wrong
// workload must be rejected by the watcher and never served, while the live
// version keeps serving.
func TestDeploymentRefusesCrossProblemCheckpoint(t *testing.T) {
	d, store := newTinyDeployment(t, DeployConfig{Server: Config{MaxBatch: 4, Workers: 1}})
	defer d.Close()

	// An astro-stamped checkpoint lands in the hep deployment's store. The
	// weights would stream into the architecture (same net geometry) — only
	// the problem label can catch it.
	net, _ := trainTinyHEP(t, 2)
	if _, err := store.Save(&ckpt.Snapshot{Step: 2, Arch: "tiny", Problem: "astro", Params: net.Params()}); err != nil {
		t.Fatal(err)
	}
	ok, err := d.PollOnce()
	if ok || err == nil || !strings.Contains(err.Error(), "cross-workload") {
		t.Fatalf("poll accepted a cross-workload checkpoint: ok=%v err=%v", ok, err)
	}
	if got := d.Rejected(); got != 1 {
		t.Fatalf("rejected count %d, want 1", got)
	}
	if v := d.CurrentVersion(); v != 1 {
		t.Fatalf("live version %d after refusal, want 1", v)
	}
	if _, err := d.Submit(deployInput(1)); err != nil {
		t.Fatalf("live version stopped serving after refusal: %v", err)
	}

	// A correctly stamped successor still cuts over.
	if _, err := store.Save(&ckpt.Snapshot{Step: 3, Arch: "tiny", Problem: "hep", Params: net.Params()}); err != nil {
		t.Fatal(err)
	}
	if ok, err := d.PollOnce(); err != nil || !ok {
		t.Fatalf("correctly labelled version refused: ok=%v err=%v", ok, err)
	}
	if v := d.CurrentVersion(); v != 3 {
		t.Fatalf("live version %d, want 3", v)
	}
}
