package serve

import (
	"path/filepath"
	"strings"
	"testing"

	"deep15pf/internal/climate"
	"deep15pf/internal/hep"
	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// climateTestConfig is a laptop-speed climate detector: two 2x-downsampling
// encoder convs (grid size/4) and a matching two-deconv decoder.
func climateTestConfig(size int) climate.ModelConfig {
	return climate.ModelConfig{
		Name:        "climate-tiny",
		Size:        size,
		EncChannels: []int{4, 6},
		EncStrides:  []int{2, 2},
		DecChannels: []int{4, climate.NumChannels},
		WithDecoder: true,
	}
}

func buildClimate(t *testing.T, cfg climate.ModelConfig, rng *tensor.RNG) *climate.Net {
	t.Helper()
	return climate.BuildNet(cfg, rng)
}

// tinyHEP is the micro architecture the serve tests train and serve.
func tinyHEP() hep.ModelConfig {
	return hep.ModelConfig{Name: "serve-test", ImageSize: 8, Filters: 4, ConvUnits: 2, Classes: 2}
}

// trainTinyHEP trains a fresh tiny classifier for a few plain-SGD steps so
// the checkpoint under test holds genuinely trained (not just initialised)
// weights, and returns the net with its training dataset.
func trainTinyHEP(t *testing.T, steps int) (*nn.Network, *hep.Dataset) {
	t.Helper()
	rng := tensor.NewRNG(11)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(8), 64, 0.5, rng)
	net := hep.BuildNet(tinyHEP(), rng)
	idx := make([]int, 16)
	for step := 0; step < steps; step++ {
		for i := range idx {
			idx[i] = (step*len(idx) + i) % len(ds.Labels)
		}
		x, labels := ds.Batch(idx)
		net.ZeroGrad()
		logits := net.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
		for _, p := range net.Params() {
			for j := range p.W.Data {
				p.W.Data[j] -= 0.01 * p.Grad.Data[j] / float32(len(idx))
			}
		}
	}
	return net, ds
}

// saveTinyHEP checkpoints net into a temp D15W file.
func saveTinyHEP(t *testing.T, net *nn.Network) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tiny.d15w")
	if err := nn.SaveFile(path, net.Params()); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	return path
}

// TestRegistryCheckpointRoundTrip is the end-to-end weight fidelity check:
// a trained net's logits and the logits of a registry-loaded replica of its
// checkpoint must be bitwise identical.
func TestRegistryCheckpointRoundTrip(t *testing.T) {
	net, ds := trainTinyHEP(t, 8)
	path := saveTinyHEP(t, net)

	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())
	lm, err := r.Load("tiny", path, Float32)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	rep, err := lm.NewReplica()
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}

	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	x, _ := ds.Batch(idx)
	want := net.Forward(x.Clone(), false)
	got := rep.Infer(x)
	if !want.SameShape(got) {
		t.Fatalf("logit shape %v, want %v", got.Shape, want.Shape)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("logit %d: served %v, direct %v — checkpoint round trip is not exact", i, got.Data[i], want.Data[i])
		}
	}

	// Replicas must be independent instances (workers run concurrently).
	rep2, err := lm.NewReplica()
	if err != nil {
		t.Fatalf("second NewReplica: %v", err)
	}
	if rep2 == rep {
		t.Fatal("NewReplica returned the same instance twice")
	}
	got2 := rep2.Infer(x)
	for i := range want.Data {
		if want.Data[i] != got2.Data[i] {
			t.Fatalf("second replica diverges at logit %d", i)
		}
	}
}

func TestRegistryRejectsMismatchedCheckpoint(t *testing.T) {
	net, _ := trainTinyHEP(t, 1)
	path := saveTinyHEP(t, net)

	r := NewRegistry()
	// Same topology, different width: parameter sizes disagree.
	RegisterHEP(r, "wider", hep.ModelConfig{Name: "wider", ImageSize: 8, Filters: 8, ConvUnits: 2, Classes: 2})
	if _, err := r.Load("wider", path, Float32); err == nil {
		t.Fatal("Load accepted a checkpoint from a different architecture")
	}
	if _, err := r.Load("absent", path, Float32); err == nil || !strings.Contains(err.Error(), "unknown architecture") {
		t.Fatalf("Load of unregistered arch: %v", err)
	}
}

// TestInt8ReplicaDeterminism: int8 replicas quantise from a fixed seed, so
// every replica must produce identical logits — which worker handles a
// request must not change the response.
func TestInt8ReplicaDeterminism(t *testing.T) {
	net, ds := trainTinyHEP(t, 4)
	path := saveTinyHEP(t, net)
	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())
	lm, err := r.Load("tiny", path, Int8)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	a, err := lm.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	b, err := lm.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("int8 replicas disagree on weight %s[%d]", pa[i].Name, j)
			}
		}
	}
	// Quantised weights differ from the float checkpoint but stay close:
	// the per-tensor scale bounds the rounding error by one step.
	x, _ := ds.Batch([]int{0, 1, 2, 3})
	f32 := net.Forward(x.Clone(), false)
	i8 := a.Infer(x.Clone())
	var maxAbs float64
	for i := range f32.Data {
		d := float64(f32.Data[i] - i8.Data[i])
		if d < 0 {
			d = -d
		}
		if d > maxAbs {
			maxAbs = d
		}
	}
	if maxAbs == 0 {
		t.Log("int8 logits happen to match float32 exactly (tiny net; acceptable)")
	}
	if maxAbs > 1.0 {
		t.Fatalf("int8 logits stray %.3f from float32 — quantisation path is broken", maxAbs)
	}
}

// TestClimateServing covers the second architecture family: a climate
// checkpoint loads through the registry and serves packed head outputs of
// the documented shape, and gradient release leaves params intact.
func TestClimateServing(t *testing.T) {
	cfg := struct{ size, g int }{size: 16, g: 4}
	ccfg := climateTestConfig(cfg.size)
	rng := tensor.NewRNG(3)
	cn := buildClimate(t, ccfg, rng)
	path := filepath.Join(t.TempDir(), "climate.d15w")
	if err := nn.SaveFile(path, cn.Params()); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry()
	RegisterClimate(r, "climate-tiny", ccfg)
	lm, err := r.Load("climate-tiny", path, Float32)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	rep, err := lm.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	wantOut := []int{climateOutChannels, cfg.g, cfg.g}
	if !sameShape(lm.OutShape(), wantOut) {
		t.Fatalf("OutShape %v, want %v", lm.OutShape(), wantOut)
	}
	x := tensor.New(2, lm.InShape()[0], cfg.size, cfg.size)
	tensor.NewRNG(4).FillNorm(x, 0, 1)
	y := rep.Infer(x)
	if !sameShape(y.Shape, append([]int{2}, wantOut...)) {
		t.Fatalf("served shape %v", y.Shape)
	}
	for _, p := range rep.Params() {
		if p.Grad != nil {
			t.Fatalf("replica %s still holds a gradient accumulator", p.Name)
		}
	}
	// Serving flops must exclude the decoder: strictly less than the full
	// net's forward cost, more than the encoder alone.
	enc := cn.Encoder.FLOPsPerSample().Fwd
	full := cn.FLOPsPerSample().Fwd
	if got := lm.FwdFLOPsPerSample(); got <= enc || got >= full {
		t.Fatalf("serving flops %d not in (encoder %d, full %d)", got, enc, full)
	}
}

// TestLoadWrongArchNamesOffendingParam is the regression gate for loading
// a checkpoint into a mismatched architecture: the registry must fail
// loudly at Load time with the first offending parameter's name in the
// error — never a silent misload or a shape panic later, in a worker, mid
// forward pass.
func TestLoadWrongArchNamesOffendingParam(t *testing.T) {
	// A checkpoint of the 8-filter variant of the same family: identical
	// parameter names and count, different tensor sizes — the nastiest
	// mismatch, because only per-blob validation can catch it.
	wide := tinyHEP()
	wide.Filters = 8
	net := hep.BuildNet(wide, tensor.NewRNG(3))
	path := saveTinyHEP(t, net)

	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())
	_, err := r.Load("tiny", path, Float32)
	if err == nil {
		t.Fatal("checkpoint from a different architecture loaded silently")
	}
	if !strings.Contains(err.Error(), "conv") || !strings.Contains(err.Error(), "elements") {
		t.Errorf("error %q does not name the offending parameter", err)
	}
	if !strings.Contains(err.Error(), `"tiny"`) {
		t.Errorf("error %q does not name the target architecture", err)
	}

	// Different family entirely (climate): blob-count mismatch, still an
	// explicit load error.
	RegisterClimate(r, "clim", climateTestConfig(16))
	if _, err := r.Load("clim", path, Float32); err == nil {
		t.Fatal("cross-family checkpoint loaded silently")
	}
}
