package serve

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"deep15pf/internal/obs"
	"deep15pf/internal/tensor"
)

// LoadInput is one request template for the load generator: a per-sample
// input tensor plus an optional check applied to each response (shape and
// sanity assertions, typically).
type LoadInput struct {
	X     *tensor.Tensor
	Check func(y *tensor.Tensor) error
}

// Submitter is anything the load generators can drive: a local Server, a
// hot-reloading Deployment, or a network-tier handle (netserve's client
// and router frontends adapt to it), so the same load harness measures
// in-process and over-the-wire serving with identical arrival processes.
type Submitter interface {
	Submit(x *tensor.Tensor) (*tensor.Tensor, error)
}

// LoadResult summarises one load run. Requests counts requests that
// actually completed (and passed their check); Dropped counts requests
// that returned an error — the number the rolling-restart gate requires
// to be zero. P50/P95/P99 are client-observed end-to-end latencies
// (submit→response), measured at the generator so they include everything
// a real caller would see: socket writes, routing, queueing, inference.
type LoadResult struct {
	Requests int
	Dropped  int
	Wall     time.Duration
	// Throughput is completed requests per second over the run.
	Throughput    float64
	P50, P95, P99 time.Duration
	Err           error
}

// RunClosedLoop drives total requests through s from clients concurrent
// closed-loop clients (each submits its next request the moment the
// previous one completes — the standard saturation workload for a
// throughput study). Clients cycle through inputs; the first Submit error
// aborts the run. Inputs are only read, so they may be shared views into a
// dataset tensor.
//
// Closed-loop load self-limits: a slow server slows its own clients, so
// queueing delay hides from the latency record. RunOpenLoop is the
// honest-tail counterpart.
func RunClosedLoop(s Submitter, inputs []*LoadInput, clients, total int) LoadResult {
	if clients < 1 {
		clients = 1
	}
	if clients > total {
		clients = total
	}
	var (
		next      atomic.Int64
		completed atomic.Int64
		errOnce   sync.Once
		runErr    error
		wg        sync.WaitGroup
	)
	lats := make([][]float64, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := make([]float64, 0, total/clients+1)
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					lats[c] = mine
					return
				}
				in := inputs[i%len(inputs)]
				t0 := time.Now()
				y, err := s.Submit(in.X)
				if err != nil {
					errOnce.Do(func() { runErr = err })
					lats[c] = mine
					return
				}
				mine = append(mine, time.Since(t0).Seconds())
				if in.Check != nil {
					if err := in.Check(y); err != nil {
						errOnce.Do(func() { runErr = err })
						lats[c] = mine
						return
					}
				}
				completed.Add(1)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	n := int(completed.Load())
	res := LoadResult{Requests: n, Dropped: total - n, Wall: wall, Err: runErr}
	if sec := wall.Seconds(); sec > 0 {
		res.Throughput = float64(n) / sec
	}
	res.fillQuantiles(lats)
	return res
}

// RunOpenLoop drives total requests through s with Poisson arrivals at
// rate requests/second: inter-arrival gaps are exponential draws from a
// deterministic RNG, and every arrival fires on schedule whether or not
// earlier requests have completed. This is the load a fleet actually
// faces — independent users do not wait for each other — and it is the
// honest way to measure tail latency: under a closed loop a slow server
// throttles its own clients, so queueing delay never shows up in p99,
// while an open loop keeps arriving and the backlog lands in the
// latency record where it belongs.
//
// Submit errors do not abort the run (arrivals are exogenous); they are
// counted in Dropped and the first one is recorded in Err.
func RunOpenLoop(s Submitter, inputs []*LoadInput, rate float64, total int, seed uint64) LoadResult {
	if rate <= 0 || total <= 0 {
		return LoadResult{}
	}
	var (
		completed atomic.Int64
		dropped   atomic.Int64
		errOnce   sync.Once
		runErr    error
		wg        sync.WaitGroup
		mu        sync.Mutex
	)
	lats := make([]float64, 0, total)
	rng := tensor.NewRNG(seed)
	start := time.Now()
	next := start
	for i := 0; i < total; i++ {
		// Exponential inter-arrival: -ln(U)/rate, U in (0,1].
		u := rng.Float64()
		if u <= 0 {
			u = 1
		}
		next = next.Add(time.Duration(-math.Log(u) / rate * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		in := inputs[i%len(inputs)]
		wg.Add(1)
		go func(in *LoadInput) {
			defer wg.Done()
			t0 := time.Now()
			y, err := s.Submit(in.X)
			if err == nil && in.Check != nil {
				err = in.Check(y)
			}
			if err != nil {
				dropped.Add(1)
				errOnce.Do(func() { runErr = err })
				return
			}
			l := time.Since(t0).Seconds()
			mu.Lock()
			lats = append(lats, l)
			mu.Unlock()
			completed.Add(1)
		}(in)
	}
	wg.Wait()
	wall := time.Since(start)
	n := int(completed.Load())
	res := LoadResult{Requests: n, Dropped: int(dropped.Load()), Wall: wall, Err: runErr}
	if sec := wall.Seconds(); sec > 0 {
		res.Throughput = float64(n) / sec
	}
	res.fillQuantiles([][]float64{lats})
	return res
}

// fillQuantiles merges per-client latency records and computes the
// nearest-rank quantiles.
func (r *LoadResult) fillQuantiles(lats [][]float64) {
	n := 0
	for _, l := range lats {
		n += len(l)
	}
	if n == 0 {
		return
	}
	all := make([]float64, 0, n)
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	r.P50 = time.Duration(obs.QuantileSorted(all, 0.50) * float64(time.Second))
	r.P95 = time.Duration(obs.QuantileSorted(all, 0.95) * float64(time.Second))
	r.P99 = time.Duration(obs.QuantileSorted(all, 0.99) * float64(time.Second))
}
