package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"deep15pf/internal/tensor"
)

// LoadInput is one request template for the load generator: a per-sample
// input tensor plus an optional check applied to each response (shape and
// sanity assertions, typically).
type LoadInput struct {
	X     *tensor.Tensor
	Check func(y *tensor.Tensor) error
}

// LoadResult summarises one closed-loop load run. Requests counts requests
// that actually completed (and passed their check) — on an aborted run it
// is less than the total asked for.
type LoadResult struct {
	Requests int
	Wall     time.Duration
	// Throughput is completed requests per second over the run.
	Throughput float64
	Err        error
}

// RunClosedLoop drives total requests through s from clients concurrent
// closed-loop clients (each submits its next request the moment the
// previous one completes — the standard saturation workload for a
// throughput study). Clients cycle through inputs; the first Submit error
// aborts the run. Inputs are only read, so they may be shared views into a
// dataset tensor.
func RunClosedLoop(s *Server, inputs []*LoadInput, clients, total int) LoadResult {
	if clients < 1 {
		clients = 1
	}
	if clients > total {
		clients = total
	}
	var (
		next      atomic.Int64
		completed atomic.Int64
		errOnce   sync.Once
		runErr    error
		wg        sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				in := inputs[i%len(inputs)]
				y, err := s.Submit(in.X)
				if err != nil {
					errOnce.Do(func() { runErr = err })
					return
				}
				if in.Check != nil {
					if err := in.Check(y); err != nil {
						errOnce.Do(func() { runErr = err })
						return
					}
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	n := int(completed.Load())
	res := LoadResult{Requests: n, Wall: wall, Err: runErr}
	if sec := wall.Seconds(); sec > 0 {
		res.Throughput = float64(n) / sec
	}
	return res
}
