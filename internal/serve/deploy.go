package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"deep15pf/internal/ckpt"
	"deep15pf/internal/tensor"
)

// Deployment closes the train→serve loop: it serves one architecture out
// of a ckpt.Store and hot-reloads new checkpoint versions as training
// publishes them — the continuous-retrain-and-redeploy shape production
// descendants of this pipeline run (e.g. Khan et al. 2019's DES galaxy
// catalogs). The lifecycle per incoming version:
//
//  1. the watcher polls the store and sees a new complete version;
//  2. the manifest CRCs are verified (ckpt.Store.Poll) and the arch is
//     checked against the deployment's — a checkpoint from the wrong
//     model family is rejected and counted, never served;
//  3. a full replica pool is built in the background (registry load +
//     per-worker replicas) while the live server keeps serving;
//  4. cutover: with Canary == 0 the new server atomically replaces the
//     old one; otherwise the new version first serves a deterministic
//     Canary fraction of traffic, with its own latency/throughput
//     metrics, and is promoted after CanaryRequests clean responses (or
//     by an explicit Promote/Rollback call).
//
// No request is ever dropped by a swap: Submit routes through the current
// pointer, a server closed underneath a racing submitter rejects it
// before enqueue, and the router retries against the fresh pointer; the
// old server's Close waits out its in-flight batches.
type Deployment struct {
	reg   *Registry
	arch  string
	prec  Precision
	store *ckpt.Store
	cfg   DeployConfig

	mu      sync.Mutex
	current *versioned
	canary  *versioned
	seen    int // highest store version already considered
	lastErr error

	ctr      atomic.Uint64 // request counter (deterministic canary routing)
	canaryOK atomic.Int64  // clean canary responses since install
	swaps    atomic.Int64
	rejected atomic.Int64

	watchStop chan struct{}
	watchWG   sync.WaitGroup
	closed    bool
}

// DeployConfig parameterises a Deployment.
type DeployConfig struct {
	// Server configures each version's batcher/worker pool.
	Server Config
	// Canary routes this fraction of traffic (0..1) to an incoming
	// version before cutover. 0 swaps immediately.
	Canary float64
	// CanaryRequests is how many clean canary responses promote the
	// incoming version automatically (with Canary > 0). Default 256.
	CanaryRequests int
	// Poll is the store polling interval for Watch. Default 250ms.
	Poll time.Duration
}

func (c DeployConfig) withDefaults() DeployConfig {
	if c.Canary < 0 || c.Canary > 1 {
		panic(fmt.Sprintf("serve: canary fraction %v out of [0,1]", c.Canary))
	}
	if c.CanaryRequests <= 0 {
		c.CanaryRequests = 256
	}
	if c.Poll <= 0 {
		c.Poll = 250 * time.Millisecond
	}
	return c
}

// versioned is one checkpoint version's running server.
type versioned struct {
	version int
	srv     *Server
}

// VersionStats is one live version's serving record.
type VersionStats struct {
	Version int
	Canary  bool
	Stats   Stats
}

// NewDeployment builds a deployment over the newest version in the store
// (which must hold at least one complete, verifiable version). Call Watch
// to start hot-reloading; PollOnce drives the same logic synchronously.
func NewDeployment(reg *Registry, arch string, prec Precision, store *ckpt.Store, cfg DeployConfig) (*Deployment, error) {
	d := &Deployment{
		reg: reg, arch: arch, prec: prec, store: store,
		cfg:       cfg.withDefaults(),
		watchStop: make(chan struct{}),
	}
	m, ok, err := store.Poll(0)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("serve: checkpoint store %s holds no complete version", store.Dir())
	}
	v, err := d.build(m)
	if err != nil {
		return nil, err
	}
	d.current = v
	d.seen = m.Version
	return d, nil
}

// build verifies a manifest's arch and workload label and constructs a full
// server for it — the expensive step that always runs off the serving path.
func (d *Deployment) build(m ckpt.Manifest) (*versioned, error) {
	if m.Arch != "" && m.Arch != d.arch {
		return nil, fmt.Errorf("serve: checkpoint version %d is arch %q, deployment serves %q", m.Version, m.Arch, d.arch)
	}
	if err := d.reg.CheckManifest(d.arch, m.Arch, m.Problem); err != nil {
		return nil, fmt.Errorf("serve: checkpoint version %d: %w", m.Version, err)
	}
	lm, err := d.reg.Load(d.arch, d.store.WeightsPath(m.Version), d.prec)
	if err != nil {
		return nil, fmt.Errorf("serve: version %d: %w", m.Version, err)
	}
	srv, err := NewServer(lm, d.cfg.Server)
	if err != nil {
		return nil, fmt.Errorf("serve: version %d: %w", m.Version, err)
	}
	return &versioned{version: m.Version, srv: srv}, nil
}

// Submit routes one request through the live version (or, during a
// canary, deterministically through the incoming one at the configured
// fraction) and never drops it across a swap: a server closed mid-flight
// rejects before enqueue and the request retries on the fresh pointer.
func (d *Deployment) Submit(x *tensor.Tensor) (*tensor.Tensor, error) {
	for {
		d.mu.Lock()
		cur, can := d.current, d.canary
		d.mu.Unlock()
		if cur == nil {
			return nil, ErrClosed
		}
		target, isCanary := cur, false
		if can != nil && d.cfg.Canary > 0 {
			// Stride routing: request i is a canary request when the
			// running quota floor(i·frac) advances — exact fraction, no
			// RNG, no bursts.
			i := d.ctr.Add(1)
			if uint64(float64(i)*d.cfg.Canary) != uint64(float64(i-1)*d.cfg.Canary) {
				target, isCanary = can, true
			}
		}
		y, err := target.srv.Submit(x)
		if errors.Is(err, ErrClosed) {
			continue // swapped or rolled back underneath: retry on the fresh pointer
		}
		if err == nil && isCanary {
			if d.canaryOK.Add(1) >= int64(d.cfg.CanaryRequests) {
				d.Promote()
			}
		}
		return y, err
	}
}

// PollOnce checks the store for a version newer than any already
// considered, builds it, and installs it (as canary with Canary > 0,
// otherwise by immediate cutover). It reports whether a new version was
// installed. Rejected versions (bad CRC via the store, wrong arch,
// unloadable weights) are counted, recorded in Err, and never retried.
func (d *Deployment) PollOnce() (bool, error) {
	d.mu.Lock()
	after := d.seen
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return false, ErrClosed
	}
	m, ok, err := d.store.Poll(after)
	if err != nil {
		// A verification failure comes back with the offending manifest:
		// count it rejected and advance past it, so a bit-rotted version
		// is diagnosed once — not re-read and re-CRC'd on every tick.
		if m.Version > after {
			d.mu.Lock()
			d.seen = m.Version
			d.mu.Unlock()
			d.rejected.Add(1)
		}
		d.setErr(err)
		return false, err
	}
	if !ok {
		return false, nil
	}
	d.mu.Lock()
	d.seen = m.Version // considered exactly once, accepted or not
	d.mu.Unlock()
	v, err := d.build(m)
	if err != nil {
		d.rejected.Add(1)
		d.setErr(err)
		return false, err
	}
	if d.cfg.Canary > 0 {
		d.installCanary(v)
	} else {
		d.cutover(v)
	}
	return true, nil
}

// installCanary stages an incoming version behind the canary fraction,
// replacing (and closing) any previous canary that never promoted. If
// Close raced in while the version was building, the newcomer is shut
// down instead of installed — Close must not leave a resurrected server
// running.
func (d *Deployment) installCanary(v *versioned) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		v.srv.Close()
		return
	}
	old := d.canary
	d.canary = v
	d.canaryOK.Store(0)
	d.mu.Unlock()
	if old != nil {
		old.srv.Close()
	}
}

// cutover atomically makes v the live version and retires the old one
// (closing it only after the swap, so its in-flight requests finish and
// late arrivals bounce to the new pointer). A Close that raced in during
// the build wins: the incoming server is closed, not installed.
func (d *Deployment) cutover(v *versioned) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		v.srv.Close()
		return
	}
	old := d.current
	d.current = v
	d.canary = nil
	d.mu.Unlock()
	d.swaps.Add(1)
	if old != nil {
		old.srv.Close()
	}
}

// Promote cuts the canary over to live. No-op without a canary.
func (d *Deployment) Promote() {
	d.mu.Lock()
	can := d.canary
	if can == nil {
		d.mu.Unlock()
		return
	}
	old := d.current
	d.current = can
	d.canary = nil
	d.mu.Unlock()
	d.swaps.Add(1)
	if old != nil {
		old.srv.Close()
	}
}

// Rollback discards the canary and keeps serving the live version. The
// rejected version is not reconsidered (publish a new one to retry).
func (d *Deployment) Rollback() {
	d.mu.Lock()
	can := d.canary
	d.canary = nil
	d.mu.Unlock()
	if can != nil {
		d.rejected.Add(1)
		can.srv.Close()
	}
}

// Watch polls the store on the configured interval until Close.
func (d *Deployment) Watch() {
	d.watchWG.Add(1)
	go func() {
		defer d.watchWG.Done()
		tick := time.NewTicker(d.cfg.Poll)
		defer tick.Stop()
		for {
			select {
			case <-d.watchStop:
				return
			case <-tick.C:
				d.PollOnce() // errors are recorded and counted, not fatal
			}
		}
	}()
}

// Versions snapshots the live (and, if present, canary) serving stats —
// the per-version latency/throughput evidence a cutover decision reads.
func (d *Deployment) Versions() []VersionStats {
	d.mu.Lock()
	cur, can := d.current, d.canary
	d.mu.Unlock()
	var out []VersionStats
	if cur != nil {
		out = append(out, VersionStats{Version: cur.version, Stats: cur.srv.Stats()})
	}
	if can != nil {
		out = append(out, VersionStats{Version: can.version, Canary: true, Stats: can.srv.Stats()})
	}
	return out
}

// Loaded returns the live version's loaded model (shapes, flop costs) —
// nil after Close.
func (d *Deployment) Loaded() *LoadedModel {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.current == nil {
		return nil
	}
	return d.current.srv.Model()
}

// CurrentVersion returns the live checkpoint version.
func (d *Deployment) CurrentVersion() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.current == nil {
		return 0
	}
	return d.current.version
}

// CanaryVersion returns the staged version (0 = none).
func (d *Deployment) CanaryVersion() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.canary == nil {
		return 0
	}
	return d.canary.version
}

// Swaps counts completed cutovers (immediate or promoted canaries).
func (d *Deployment) Swaps() int64 { return d.swaps.Load() }

// Rejected counts versions refused (bad arch, unloadable weights,
// rollbacks).
func (d *Deployment) Rejected() int64 { return d.rejected.Load() }

// Err returns the most recent watcher error (nil while healthy).
func (d *Deployment) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastErr
}

func (d *Deployment) setErr(err error) {
	d.mu.Lock()
	d.lastErr = err
	d.mu.Unlock()
}

// Close stops the watcher and shuts down every live server, waiting out
// in-flight requests.
func (d *Deployment) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	cur, can := d.current, d.canary
	d.current, d.canary = nil, nil
	d.mu.Unlock()
	close(d.watchStop)
	d.watchWG.Wait()
	if can != nil {
		can.srv.Close()
	}
	if cur != nil {
		cur.srv.Close()
	}
}
