package serve

import (
	"math"
	"path/filepath"
	"testing"

	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// TestQuantizedServingPath covers the native int8 datapath end to end:
// SetQuantized A/B toggling, calibration freezing, per-channel weight
// scales stored at Load, and int8 logits tracking fp32 within the
// quantisation budget.
func TestQuantizedServingPath(t *testing.T) {
	net, ds := trainTinyHEP(t, 4)
	path := saveTinyHEP(t, net)
	r := NewRegistry()
	RegisterHEP(r, "tiny", tinyHEP())

	lm, err := r.Load("tiny", path, Float32)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Per-channel scales are captured at Load, before any int8 replica.
	ws := lm.WeightScales()
	if len(ws) == 0 {
		t.Fatal("Load stored no weight scales for a native-int8 architecture")
	}
	for name, s := range ws {
		for i, v := range s {
			if !(v > 0) {
				t.Fatalf("%s scale[%d] = %g", name, i, v)
			}
		}
	}

	x, _ := ds.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})
	f32Rep, err := lm.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	want := f32Rep.Infer(x.Clone())

	// A/B flip to int8; replicas minted after serve the integer datapath.
	lm.SetQuantized(true)
	if lm.Prec != Int8 {
		t.Fatalf("SetQuantized(true) left Prec %v", lm.Prec)
	}
	i8Rep, err := lm.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	got := i8Rep.Infer(x.Clone())
	requireClose(t, "dynamic-scale int8", got, want)

	// fp32 weights must survive untouched on the native path (the plan
	// holds the s8 copies) — this is what makes the toggle lossless.
	p8, p32 := i8Rep.Params(), f32Rep.Params()
	for i := range p32 {
		for j := range p32[i].W.Data {
			if p8[i].W.Data[j] != p32[i].W.Data[j] {
				t.Fatalf("int8 replica mutated fp32 weight %s[%d]", p32[i].Name, j)
			}
		}
	}

	// Calibration freezes activation scales; served outputs stay in budget
	// and two post-calibration replicas agree exactly (deterministic grid).
	xa, _ := ds.Batch([]int{8, 9, 10, 11})
	if err := lm.Calibrate(xa, x.Clone()); err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	ca, err := lm.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := lm.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := ca.Infer(x.Clone()), cb.Infer(x.Clone())
	requireClose(t, "calibrated int8", ga, want)
	for i := range ga.Data {
		if ga.Data[i] != gb.Data[i] {
			t.Fatalf("calibrated int8 replicas disagree at logit %d", i)
		}
	}

	// Flip back: fp32 replicas mint again and match the original bitwise.
	lm.SetQuantized(false)
	backRep, err := lm.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	back := backRep.Infer(x.Clone())
	for i := range want.Data {
		if back.Data[i] != want.Data[i] {
			t.Fatalf("post-toggle fp32 replica diverges at logit %d", i)
		}
	}
}

// requireClose bounds int8 logits to the fp32 reference: within 5% of the
// output range plus a small absolute floor (the serving benchmark gates the
// end-to-end accuracy delta; this catches gross datapath breakage).
func requireClose(t *testing.T, name string, got, want *tensor.Tensor) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: size %d vs %d", name, got.Len(), want.Len())
	}
	var maxAbs float64
	for _, v := range want.Data {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	tol := 0.05*maxAbs + 1e-2
	for i := range want.Data {
		if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > tol {
			t.Fatalf("%s: logit %d = %g vs fp32 %g (|Δ|=%g > %g)", name, i, got.Data[i], want.Data[i], d, tol)
		}
	}
}

// TestCalibrateRejectsEmulatedArch: architectures without a native int8
// datapath cannot calibrate.
func TestCalibrateRejectsEmulatedArch(t *testing.T) {
	cn := buildClimate(t, climateTestConfig(16), tensor.NewRNG(3))
	path := filepath.Join(t.TempDir(), "climate.d15w")
	if err := nn.SaveFile(path, cn.Params()); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	RegisterClimate(r, "ctiny", climateTestConfig(16))
	lm, err := r.Load("ctiny", path, Int8)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	x := tensor.New(append([]int{1}, lm.InShape()...)...)
	if err := lm.Calibrate(x); err == nil {
		t.Fatal("Calibrate succeeded on an emulated-int8 architecture")
	}
}
