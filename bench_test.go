package deep15pf_test

// One benchmark per table and figure of the paper, plus kernel
// micro-benchmarks. Figure-level benchmarks wrap the harness generators in
// quick mode (each iteration regenerates the full experiment); kernel
// benchmarks measure the substrate the way DeepBench measures MKL/cuDNN.
//
// Regenerate everything textually with: go run ./cmd/repro

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"deep15pf/internal/astro"
	"deep15pf/internal/bulk"
	"deep15pf/internal/ckpt"
	"deep15pf/internal/cluster"
	"deep15pf/internal/core"
	"deep15pf/internal/data"
	"deep15pf/internal/harness"
	"deep15pf/internal/hep"
	"deep15pf/internal/netserve"
	"deep15pf/internal/nn"
	"deep15pf/internal/obs"
	"deep15pf/internal/opt"
	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

func benchOpts() harness.Options { return harness.Options{Quick: true, Seed: 42} }

// ---- Tables and figures ----

func BenchmarkTable1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.Table1(benchOpts())
	}
}

func BenchmarkTable2ArchSpecs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.Table2(benchOpts())
	}
}

func BenchmarkFig5SingleNodeBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.Fig5(benchOpts())
	}
}

func BenchmarkFig6StrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.Fig6(benchOpts())
	}
}

func BenchmarkFig7WeakScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.Fig7(benchOpts())
	}
}

func BenchmarkFullSystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.FullSystem(benchOpts())
	}
}

func BenchmarkFig8TimeToTrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.Fig8(benchOpts())
	}
}

func BenchmarkHEPScience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.HEPScience(benchOpts())
	}
}

func BenchmarkClimateScience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.ClimateScience(benchOpts())
	}
}

func BenchmarkResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.Resilience(benchOpts())
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.Ablations(benchOpts())
	}
}

// ---- Kernel micro-benchmarks (DeepBench-style, §II-A) ----

func BenchmarkGemmSquare256(b *testing.B) {
	rng := tensor.NewRNG(1)
	n := 256
	x := make([]float32, n*n)
	y := make([]float32, n*n)
	c := make([]float32, n*n)
	for i := range x {
		x[i] = float32(rng.Norm())
		y[i] = float32(rng.Norm())
	}
	b.SetBytes(int64(3 * n * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(false, false, n, n, n, 1, x, y, 0, c)
	}
	b.ReportMetric(float64(tensor.GemmFLOPs(n, n, n))*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkGemmTallSkinny mirrors the deep-learning GEMM shape the paper's
// §II-A highlights: conv2 of the HEP network lowered by im2col at batch 1
// (M=128 filters, K=1152, N=spatial).
func BenchmarkGemmTallSkinny(b *testing.B) {
	rng := tensor.NewRNG(2)
	m, k, n := 128, 1152, 784
	w := make([]float32, m*k)
	col := make([]float32, k*n)
	out := make([]float32, m*n)
	for i := range w {
		w[i] = float32(rng.Norm())
	}
	for i := range col {
		col[i] = float32(rng.Norm())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(false, false, m, n, k, 1, w, col, 0, out)
	}
	b.ReportMetric(float64(tensor.GemmFLOPs(m, n, k))*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkHEPConvLayer measures one mid-network HEP convolution
// (128→128 3x3 on 28x28), the layer family that dominates Fig 5a.
func BenchmarkHEPConvLayer(b *testing.B) {
	rng := tensor.NewRNG(3)
	conv := nn.NewConv2D("conv4", 128, 128, 3, 1, 1, rng)
	x := tensor.New(1, 128, 28, 28)
	rng.FillNorm(x, 0, 1)
	flops := conv.FLOPs([]int{128, 28, 28})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
	b.ReportMetric(float64(flops.Fwd)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkHEPForwardBackward measures a full training step of the scaled
// HEP network (the unit of Fig 5a's iteration time).
func BenchmarkHEPForwardBackward(b *testing.B) {
	rng := tensor.NewRNG(4)
	cfg := hep.ModelConfig{Name: "bench", ImageSize: 32, Filters: 16, ConvUnits: 4, Classes: 2}
	net := hep.BuildNet(cfg, rng)
	x := tensor.New(4, 3, 32, 32)
	rng.FillNorm(x, 0, 1)
	labels := []int{0, 1, 0, 1}
	flops := net.FLOPsPerSample().Total() * 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		logits := net.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
	}
	b.ReportMetric(float64(flops)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// ---- Serving (internal/serve) ----

// benchServeThroughput drives b.N closed-loop requests through a serving
// stack at the given max batch size, reporting requests/second and p99
// end-to-end latency — the serving perf trajectory future PRs are measured
// against (cmd/deepserve runs the same study interactively).
func benchServeThroughput(b *testing.B, maxBatch int) {
	cfg := hep.ModelConfig{Name: "bench-serve", ImageSize: 4, Filters: 16, ConvUnits: 2, Classes: 2}
	rng := tensor.NewRNG(7)
	net := hep.BuildNet(cfg, rng)
	path := filepath.Join(b.TempDir(), "bench.d15w")
	if err := nn.SaveFile(path, net.Params()); err != nil {
		b.Fatal(err)
	}
	reg := serve.NewRegistry()
	serve.RegisterHEP(reg, "bench-serve", cfg)
	lm, err := reg.Load("bench-serve", path, serve.Float32)
	if err != nil {
		b.Fatal(err)
	}
	s, err := serve.NewServer(lm, serve.Config{MaxBatch: maxBatch})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	inputs := make([]*serve.LoadInput, 64)
	for i := range inputs {
		x := tensor.New(3, cfg.ImageSize, cfg.ImageSize)
		rng.FillNorm(x, 0, 1)
		inputs[i] = &serve.LoadInput{X: x}
	}
	clients := 2 * maxBatch
	if clients < 8 {
		clients = 8
	}
	b.ResetTimer()
	res := serve.RunClosedLoop(s, inputs, clients, b.N)
	if res.Err != nil {
		b.Fatal(res.Err)
	}
	st := s.Stats()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(st.P99.Microseconds())/1000, "p99-ms")
}

func BenchmarkServeThroughputBatch1(b *testing.B)  { benchServeThroughput(b, 1) }
func BenchmarkServeThroughputBatch8(b *testing.B)  { benchServeThroughput(b, 8) }
func BenchmarkServeThroughputBatch32(b *testing.B) { benchServeThroughput(b, 32) }

// ---- Machine-readable serving perf trajectory (BENCH_serve.json) ----

// serveBenchSide is one measured configuration of the serving A/B.
type serveBenchSide struct {
	ReqPerSec        float64 `json:"req_per_sec"`
	P99Ms            float64 `json:"p99_ms"`
	AllocsPerRequest float64 `json:"allocs_per_request"`
	MeanBatch        float64 `json:"mean_batch"`
}

// serveBenchReport is the BENCH_serve.json schema: the same closed-loop
// load through the compiled-plan serving path and the legacy per-pass
// allocation path, so the perf trajectory records both the throughput and
// the allocation deltas plans buy.
type serveBenchReport struct {
	Model            string         `json:"model"`
	Requests         int            `json:"requests"`
	Clients          int            `json:"clients"`
	MaxBatch         int            `json:"max_batch"`
	Planned          serveBenchSide `json:"planned"`
	Unplanned        serveBenchSide `json:"unplanned"`
	ThroughputGain   float64        `json:"throughput_gain"`
	AllocReduction   float64        `json:"alloc_reduction"`
	P99ImprovementMs float64        `json:"p99_improvement_ms"`

	// Traced (PR 6) is the planned path with the phase tracer attached
	// (per-worker Queue/Batch/Infer spans on every batch);
	// TracedReqDeltaFrac is its throughput relative to the untraced planned
	// run minus one. Recorded, not gated: it is wall-clock on a shared
	// runner. The zero-alloc property that keeps this delta near zero IS
	// gated, deterministically, in internal/obs and internal/serve.
	Traced             serveBenchSide `json:"traced"`
	TracedReqDeltaFrac float64        `json:"traced_req_s_delta_frac"`

	// Int8 (PR 7) is the same load through the quantized datapath
	// (u8·s8 integer GEMM, per-channel weight scales, calibrated
	// activations); AccDelta is fp32 accuracy minus int8 accuracy on a
	// held-out HEP eval set served through the same registry. The
	// throughput gain is gated on multi-core hosts only — single-core
	// wall-clock is recorded for the trajectory.
	Int8               int8BenchSide `json:"int8"`
	Int8ThroughputGain float64       `json:"int8_throughput_gain"`

	// Fleet (PR 8) is the network tier: the same model served over real
	// loopback TCP through internal/netserve's router. fleet_single vs
	// fleet_pair is the scale-out A/B; hedge_off vs hedge_on is the tail
	// A/B with the rendezvous-preferred member deliberately slowed, so
	// every sticky dispatch takes the slow path and the hedge race is
	// real; socket_allocs_per_request is whole-process mallocs per warm
	// round trip over a socket with both endpoints in this process, so
	// client and server costs are both counted.
	Fleet fleetBenchBlock `json:"fleet"`

	// Bulk (PR 9) is the offline tier: the same model scoring fixed shard
	// sets through the throughput-first bulk engine vs. the same sample
	// count pushed through the online Submit path, plus int8 and a
	// two-backend work-stealing fleet over loopback TCP.
	Bulk bulkBenchBlock `json:"bulk"`

	// KernelDispatch names the ISA the runtime probe installed (the fp32
	// result is bitwise identical across all of them; see
	// internal/tensor/kernels.go). The gemm_blocked_* and int8_gemm_* rows
	// are single-thread micro-benchmark rates on this host.
	KernelDispatch              string  `json:"kernel_dispatch"`
	GemmBlockedSquare256GFLOPs  float64 `json:"gemm_blocked_square256_gflops"`
	GemmBlockedTallSkinnyGFLOPs float64 `json:"gemm_blocked_tallskinny_gflops"`
	Int8GemmTallSkinnyGOPs      float64 `json:"int8_gemm_tallskinny_gops"`
	HostCPUs                    int     `json:"host_cpus"`
}

// int8BenchSide is the quantized serving side plus its accuracy cost.
type int8BenchSide struct {
	serveBenchSide
	AccDelta float64 `json:"acc_delta"`
}

// measureServeSide drives a fixed closed-loop load through a fresh server
// and reports throughput, tail latency and whole-process allocations per
// request (runtime mallocs delta — it counts the load generator too, which
// is exactly the end-to-end number an operator sees). quantized serves the
// int8 datapath, calibrated over the request pool.
func measureServeSide(t *testing.T, planning, quantized bool, tr *obs.Tracer, requests, clients, maxBatch int) serveBenchSide {
	t.Helper()
	cfg := hep.ModelConfig{Name: "bench-serve-json", ImageSize: 4, Filters: 16, ConvUnits: 2, Classes: 2}
	rng := tensor.NewRNG(7)
	net := hep.BuildNet(cfg, rng)
	path := filepath.Join(t.TempDir(), "bench.d15w")
	if err := nn.SaveFile(path, net.Params()); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	serve.RegisterHEP(reg, "bench-serve-json", cfg)
	lm, err := reg.Load("bench-serve-json", path, serve.Float32)
	if err != nil {
		t.Fatal(err)
	}
	lm.SetPlanning(planning)
	inputs := make([]*serve.LoadInput, 64)
	per := 3 * cfg.ImageSize * cfg.ImageSize
	calib := tensor.New(len(inputs), 3, cfg.ImageSize, cfg.ImageSize)
	for i := range inputs {
		x := tensor.New(3, cfg.ImageSize, cfg.ImageSize)
		rng.FillNorm(x, 0, 1)
		inputs[i] = &serve.LoadInput{X: x}
		copy(calib.Data[i*per:(i+1)*per], x.Data)
	}
	if quantized {
		lm.SetQuantized(true)
		if err := lm.Calibrate(calib); err != nil {
			t.Fatal(err)
		}
	}
	s, err := serve.NewServer(lm, serve.Config{MaxBatch: maxBatch, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Warm every per-batch-size plan bucket, then reset the stats so the
	// measured quantiles cover only steady state (the warmup holds the
	// first-request plan compiles).
	if res := serve.RunClosedLoop(s, inputs, clients, requests/4); res.Err != nil {
		t.Fatal(res.Err)
	}
	s.ResetStats()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res := serve.RunClosedLoop(s, inputs, clients, requests)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	runtime.ReadMemStats(&after)
	st := s.Stats()
	return serveBenchSide{
		ReqPerSec:        float64(requests) / res.Wall.Seconds(),
		P99Ms:            float64(st.P99.Microseconds()) / 1000,
		AllocsPerRequest: float64(after.Mallocs-before.Mallocs) / float64(requests),
		MeanBatch:        float64(st.Requests) / float64(st.Batches),
	}
}

// ---- Fleet tier (PR 8): routed serving over real loopback sockets ----

// fleetBenchSide is one measured fleet configuration, client-observed
// through a router over real TCP connections.
type fleetBenchSide struct {
	ReqPerSec float64 `json:"req_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	Dropped   int     `json:"dropped"`
}

// fleetBenchBlock is the fleet section of serveBenchReport; see the field
// comment there for what each side measures.
type fleetBenchBlock struct {
	FleetSingle            fleetBenchSide `json:"fleet_single"`
	FleetPair              fleetBenchSide `json:"fleet_pair"`
	HedgeOff               fleetBenchSide `json:"hedge_off"`
	HedgeOn                fleetBenchSide `json:"hedge_on"`
	HedgeP99Cut            float64        `json:"hedge_p99_cut"`
	SocketAllocsPerRequest float64        `json:"socket_allocs_per_request"`
}

func fleetSideOf(res serve.LoadResult) fleetBenchSide {
	return fleetBenchSide{
		ReqPerSec: res.Throughput,
		P50Ms:     float64(res.P50.Microseconds()) / 1000,
		P95Ms:     float64(res.P95.Microseconds()) / 1000,
		P99Ms:     float64(res.P99.Microseconds()) / 1000,
		Dropped:   res.Dropped,
	}
}

// fleetBenchModel loads the bench model through the registry (checkpoint
// round trip included) and renders a request pool, the fixture every fleet
// side shares.
func fleetBenchModel(t *testing.T) (*serve.LoadedModel, []*serve.LoadInput) {
	t.Helper()
	cfg := hep.ModelConfig{Name: "bench-fleet", ImageSize: 4, Filters: 16, ConvUnits: 2, Classes: 2}
	rng := tensor.NewRNG(7)
	net := hep.BuildNet(cfg, rng)
	path := filepath.Join(t.TempDir(), "fleet.d15w")
	if err := nn.SaveFile(path, net.Params()); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	serve.RegisterHEP(reg, "bench-fleet", cfg)
	lm, err := reg.Load("bench-fleet", path, serve.Float32)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]*serve.LoadInput, 64)
	for i := range inputs {
		x := tensor.New(3, cfg.ImageSize, cfg.ImageSize)
		rng.FillNorm(x, 0, 1)
		inputs[i] = &serve.LoadInput{X: x}
	}
	return lm, inputs
}

// startFleetBackends brings up n independent serving engines over the
// loaded model, each behind its own network listener on a loopback port.
func startFleetBackends(t *testing.T, lm *serve.LoadedModel, n int) ([]string, []*netserve.Server, []*serve.Server) {
	t.Helper()
	addrs := make([]string, n)
	nss := make([]*netserve.Server, n)
	engines := make([]*serve.Server, n)
	for i := 0; i < n; i++ {
		eng, err := serve.NewServer(lm, serve.Config{MaxBatch: 16, MaxLinger: time.Millisecond, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		ns, err := netserve.NewServer("127.0.0.1:0", map[string]*serve.Server{"bench-fleet": eng}, netserve.ServerConfig{})
		if err != nil {
			eng.Close()
			t.Fatal(err)
		}
		engines[i], nss[i], addrs[i] = eng, ns, ns.Addr()
		t.Cleanup(func() {
			ns.Close()
			eng.Close()
		})
	}
	return addrs, nss, engines
}

// routedLoad stands up a router over the backends, warms the path, and
// drives the closed-loop measurement load through it.
func routedLoad(t *testing.T, addrs []string, rcfg netserve.RouterConfig, inputs []*serve.LoadInput, clients, requests int) serve.LoadResult {
	t.Helper()
	r, err := netserve.NewRouter("127.0.0.1:0", addrs, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c, err := netserve.Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bound := c.Bind("bench-fleet")
	if res := serve.RunClosedLoop(bound, inputs, clients, 2*clients); res.Err != nil {
		t.Fatal(res.Err)
	}
	res := serve.RunClosedLoop(bound, inputs, clients, requests)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res
}

// socketAllocs measures whole-process mallocs per warm round trip over a
// real socket — client request encode, server decode, inference, response
// encode, client decode into a reused tensor. Both endpoints live in this
// process, so the number is the sum of both sides.
func socketAllocs(t *testing.T, addr string, inputs []*serve.LoadInput) float64 {
	t.Helper()
	c, err := netserve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	y := tensor.New(2)
	warm := func(n int) {
		for i := 0; i < n; i++ {
			if err := c.InferInto("bench-fleet", inputs[i%len(inputs)].X, y); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm(256)
	const n = 512
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	warm(n)
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / n
}

// measureFleetBench runs the four fleet sides. requests sizes the
// scale-out A/B; hedgeRequests sizes the tail A/B (smaller, because the
// unhedged side deliberately serves most requests through a slowed
// member).
func measureFleetBench(t *testing.T, requests, hedgeRequests, clients int) fleetBenchBlock {
	t.Helper()
	lm, inputs := fleetBenchModel(t)
	var blk fleetBenchBlock

	single, _, _ := startFleetBackends(t, lm, 1)
	blk.FleetSingle = fleetSideOf(routedLoad(t, single, netserve.RouterConfig{}, inputs, clients, requests))

	pair, nss, engines := startFleetBackends(t, lm, 2)
	blk.FleetPair = fleetSideOf(routedLoad(t, pair, netserve.RouterConfig{}, inputs, clients, requests))

	// Tail A/B over the same pair: one probe reveals which member
	// rendezvous hashing prefers for this model; slowing exactly that
	// member means every sticky dispatch takes the slow path, so the
	// hedged run has a real race to win.
	r, err := netserve.NewRouter("127.0.0.1:0", pair, netserve.RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := netserve.Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	before := engines[0].Stats().Requests
	if _, err := c.Infer("bench-fleet", inputs[0].X); err != nil {
		t.Fatal(err)
	}
	preferred := 0
	if engines[0].Stats().Requests == before {
		preferred = 1
	}
	c.Close()
	r.Close()
	nss[preferred].SetDelay(3 * time.Millisecond)
	blk.HedgeOff = fleetSideOf(routedLoad(t, pair, netserve.RouterConfig{}, inputs, clients, hedgeRequests))
	blk.HedgeOn = fleetSideOf(routedLoad(t, pair, netserve.RouterConfig{Hedge: true}, inputs, clients, hedgeRequests))
	blk.HedgeP99Cut = blk.HedgeOff.P99Ms / blk.HedgeOn.P99Ms
	nss[preferred].SetDelay(0)

	blk.SocketAllocsPerRequest = socketAllocs(t, single[0], inputs)
	return blk
}

// TestEmitServeBenchJSON measures the planned-vs-unplanned serving A/B and
// writes BENCH_serve.json so the serving perf trajectory is machine-
// readable across PRs. It also enforces the regression floor: the planned
// path must not allocate more, or serve slower than, the legacy path by
// more than harness noise allows.
func TestEmitServeBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("serving A/B takes a few seconds")
	}
	const requests, clients, maxBatch = 6000, 32, 16
	rep := serveBenchReport{
		Model:    "hep ConvUnits=2 Filters=16 ImageSize=4",
		Requests: requests, Clients: clients, MaxBatch: maxBatch,
		Planned:   measureServeSide(t, true, false, nil, requests, clients, maxBatch),
		Unplanned: measureServeSide(t, false, false, nil, requests, clients, maxBatch),
	}
	rep.Traced = measureServeSide(t, true, false, obs.NewTracer(0), requests, clients, maxBatch)
	rep.Int8.serveBenchSide = measureServeSide(t, true, true, nil, requests, clients, maxBatch)
	rep.Int8.AccDelta = servedAccuracyDelta(t)
	rep.Fleet = measureFleetBench(t, 2000, 800, 16)
	rep.Bulk = measureBulkBench(t, 4096, 256)
	rep.ThroughputGain = rep.Planned.ReqPerSec / rep.Unplanned.ReqPerSec
	rep.AllocReduction = rep.Unplanned.AllocsPerRequest / rep.Planned.AllocsPerRequest
	rep.P99ImprovementMs = rep.Unplanned.P99Ms - rep.Planned.P99Ms
	rep.TracedReqDeltaFrac = rep.Traced.ReqPerSec/rep.Planned.ReqPerSec - 1
	rep.Int8ThroughputGain = rep.Int8.ReqPerSec / rep.Planned.ReqPerSec
	rep.KernelDispatch = tensor.KernelISA()
	rep.GemmBlockedSquare256GFLOPs = gemmRate(256, 256, 256)
	rep.GemmBlockedTallSkinnyGFLOPs = gemmRate(128, 784, 1152)
	rep.Int8GemmTallSkinnyGOPs = gemmS8Rate(128, 784, 1152)
	rep.HostCPUs = runtime.NumCPU()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("planned: %.0f req/s, p99 %.2f ms, %.1f allocs/req", rep.Planned.ReqPerSec, rep.Planned.P99Ms, rep.Planned.AllocsPerRequest)
	t.Logf("unplanned: %.0f req/s, p99 %.2f ms, %.1f allocs/req", rep.Unplanned.ReqPerSec, rep.Unplanned.P99Ms, rep.Unplanned.AllocsPerRequest)
	t.Logf("traced: %.0f req/s (%+.1f%% vs planned; wall-clock, recorded not gated)",
		rep.Traced.ReqPerSec, 100*rep.TracedReqDeltaFrac)
	if rep.AllocReduction < 1 {
		t.Errorf("plans must cut allocations per request: planned %.1f vs unplanned %.1f",
			rep.Planned.AllocsPerRequest, rep.Unplanned.AllocsPerRequest)
	}
	// Throughput is wall-clock and shared-runner noise can swing it either
	// way; it is recorded in the report, not gated, so CI stays
	// deterministic. The allocation ratio above is the hard floor.
	if rep.ThroughputGain < 1 {
		t.Logf("note: planned throughput %.2fx of unplanned this run (timing noise expected on shared runners)", rep.ThroughputGain)
	}

	t.Logf("int8: %.0f req/s (%.2fx of fp32 planned), p99 %.2f ms, acc delta %.4f, kernels %s",
		rep.Int8.ReqPerSec, rep.Int8ThroughputGain, rep.Int8.P99Ms, rep.Int8.AccDelta, rep.KernelDispatch)
	t.Logf("gemm blocked: square256 %.1f GFLOP/s, tall-skinny %.1f GFLOP/s; int8 gemm %.1f GOP/s",
		rep.GemmBlockedSquare256GFLOPs, rep.GemmBlockedTallSkinnyGFLOPs, rep.Int8GemmTallSkinnyGOPs)
	// Accuracy cost of int8 serving is deterministic — gate it everywhere.
	if rep.Int8.AccDelta > 0.01 {
		t.Errorf("int8 serving loses %.4f accuracy vs fp32, budget is 0.01", rep.Int8.AccDelta)
	}
	// The int8 throughput gain is wall-clock; gate only where the host has
	// cores to make the comparison stable, record otherwise.
	if runtime.NumCPU() >= 2 {
		if rep.Int8ThroughputGain < 1.5 {
			t.Errorf("int8 throughput %.2fx of fp32 planned, want >= 1.5x on multi-core hosts", rep.Int8ThroughputGain)
		}
	} else {
		t.Logf("int8 throughput gain %.2fx recorded, not gated (host has %d CPU)", rep.Int8ThroughputGain, runtime.NumCPU())
	}

	t.Logf("fleet: single %.0f req/s p99 %.2f ms; pair %.0f req/s p99 %.2f ms; %.2f allocs/req over the socket",
		rep.Fleet.FleetSingle.ReqPerSec, rep.Fleet.FleetSingle.P99Ms,
		rep.Fleet.FleetPair.ReqPerSec, rep.Fleet.FleetPair.P99Ms,
		rep.Fleet.SocketAllocsPerRequest)
	t.Logf("hedge (one member slowed): off p99 %.2f ms, on p99 %.2f ms (%.2fx cut)",
		rep.Fleet.HedgeOff.P99Ms, rep.Fleet.HedgeOn.P99Ms, rep.Fleet.HedgeP99Cut)
	// Zero drops through the routed tier is deterministic — gate it
	// everywhere, every side.
	if d := rep.Fleet.FleetSingle.Dropped + rep.Fleet.FleetPair.Dropped +
		rep.Fleet.HedgeOff.Dropped + rep.Fleet.HedgeOn.Dropped; d != 0 {
		t.Errorf("routed serving dropped %d requests across the fleet sides, want 0", d)
	}
	// The hedge tail cut is wall-clock: gated on multi-core hosts (the
	// race needs a spare core to be real), recorded everywhere.
	if runtime.NumCPU() >= 2 {
		if rep.Fleet.HedgeP99Cut < 1.2 {
			t.Errorf("hedging cut p99 by %.2fx with a slowed member, want >= 1.2x on multi-core hosts", rep.Fleet.HedgeP99Cut)
		}
	} else {
		t.Logf("hedge p99 cut %.2fx recorded, not gated (host has %d CPU)", rep.Fleet.HedgeP99Cut, runtime.NumCPU())
	}

	t.Logf("bulk: fp32 %.0f samples/s, int8 %.0f (%.2fx), fleet pair %.0f; online Submit %.0f samples/s",
		rep.Bulk.BulkFP32.SamplesPerSec, rep.Bulk.BulkInt8.SamplesPerSec, rep.Bulk.BulkInt8Gain,
		rep.Bulk.BulkFleetPair.SamplesPerSec, rep.Bulk.OnlineSubmit.SamplesPerSec)
	// The headline bulk-vs-online ratio is wall-clock: the online side needs
	// client goroutines and batcher lingering to overlap, so the ≥3x target
	// is gated only on multi-core hosts and recorded everywhere. The bulk
	// warm path's 0-alloc contract is gated deterministically in
	// internal/bulk (TestEngineWarmPathZeroAlloc).
	if runtime.NumCPU() >= 2 {
		if rep.Bulk.BulkVsOnlineGain < 3 {
			t.Errorf("bulk scoring is %.2fx of online Submit, want >= 3x on multi-core hosts", rep.Bulk.BulkVsOnlineGain)
		}
	} else {
		t.Logf("bulk vs online gain %.2fx recorded, not gated (host has %d CPU)", rep.Bulk.BulkVsOnlineGain, runtime.NumCPU())
	}
}

// servedAccuracyDelta trains the deterministic bench model, serves the
// checkpoint through the registry at fp32 and calibrated int8, and returns
// fp32 accuracy minus int8 accuracy on a held-out eval set.
func servedAccuracyDelta(t *testing.T) float64 {
	t.Helper()
	ds, p := trainBenchProblem(11, 256)
	res := core.TrainHybrid(p, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 32, Iterations: 60,
		Solver: opt.NewAdam(2e-3), Seed: 9, Overlap: true, Codec: "fp32",
	})
	eval := p.NewReplica()
	core.InstallWeights(eval, res.FinalWeights)
	path := filepath.Join(t.TempDir(), "acc.d15w")
	if err := nn.SaveFile(path, hep.ReplicaParams(eval)); err != nil {
		t.Fatal(err)
	}
	cfg := hep.ModelConfig{Name: "bench-acc", ImageSize: 16, Filters: 16, ConvUnits: 3, Classes: 2}
	reg := serve.NewRegistry()
	serve.RegisterHEP(reg, "bench-acc", cfg)
	lm, err := reg.Load("bench-acc", path, serve.Float32)
	if err != nil {
		t.Fatal(err)
	}
	val := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), 256, 0.5, tensor.NewRNG(1234))

	accFP32 := servedAccuracy(t, lm, val)
	lm.SetQuantized(true)
	calIdx := make([]int, 64)
	for i := range calIdx {
		calIdx[i] = i % len(ds.Labels)
	}
	calX, _ := ds.Batch(calIdx)
	if err := lm.Calibrate(calX); err != nil {
		t.Fatal(err)
	}
	accInt8 := servedAccuracy(t, lm, val)
	t.Logf("served accuracy: fp32 %.4f, int8 %.4f", accFP32, accInt8)
	return accFP32 - accInt8
}

// servedAccuracy scores val through one replica minted from lm.
func servedAccuracy(t *testing.T, lm *serve.LoadedModel, val *hep.Dataset) float64 {
	t.Helper()
	rep, err := lm.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	var scores []float64
	idx := make([]int, 0, 64)
	for lo := 0; lo < len(val.Labels); lo += 64 {
		hi := lo + 64
		if hi > len(val.Labels) {
			hi = len(val.Labels)
		}
		idx = idx[:0]
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		x, _ := val.Batch(idx)
		scores = append(scores, hep.SignalScore(rep.Infer(x))...)
	}
	return hep.Accuracy(scores, val.Labels)
}

// gemmRate measures the blocked fp32 GEMM's single-run rate in GFLOP/s for
// the BENCH_serve.json kernel rows (a short fixed-work sample, not a
// statistically careful benchmark — the trajectory only needs the order of
// magnitude and the blocked-vs-naive trend).
func gemmRate(m, n, k int) float64 {
	rng := tensor.NewRNG(3)
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = float32(rng.Norm())
	}
	for i := range b {
		b[i] = float32(rng.Norm())
	}
	tensor.Gemm(false, false, m, n, k, 1, a, b, 0, c) // warm (pack pools, caches)
	iters := 0
	start := time.Now()
	for time.Since(start) < 200*time.Millisecond {
		tensor.Gemm(false, false, m, n, k, 1, a, b, 0, c)
		iters++
	}
	return float64(tensor.GemmFLOPs(m, n, k)) * float64(iters) / time.Since(start).Seconds() / 1e9
}

// gemmS8Rate is gemmRate for the integer GEMM, in G-int-ops/s (2 ops per
// multiply-accumulate, same convention as GemmFLOPs).
func gemmS8Rate(m, n, k int) float64 {
	rng := tensor.NewRNG(5)
	a := make([]int8, m*k)
	b := make([]uint8, n*k)
	c := make([]int32, m*n)
	for i := range a {
		a[i] = int8(rng.Intn(256) - 128)
	}
	for i := range b {
		b[i] = uint8(rng.Intn(256))
	}
	tensor.GemmS8(m, n, k, a, b, c)
	iters := 0
	start := time.Now()
	for time.Since(start) < 200*time.Millisecond {
		tensor.GemmS8(m, n, k, a, b, c)
		iters++
	}
	return float64(2*m) * float64(n) * float64(k) * float64(iters) / time.Since(start).Seconds() / 1e9
}

// BenchmarkClusterSimIteration measures the discrete-event simulator's own
// cost per simulated training iteration at full machine scale.
func BenchmarkClusterSimIteration(b *testing.B) {
	m := cluster.CoriPhaseII()
	p := cluster.HEPProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Simulate(m, p, cluster.RunConfig{
			Nodes: 9594, Groups: 9, BatchPerGroup: 1066, Iterations: 10, Seed: uint64(i),
		})
	}
}

// ---- Machine-readable training perf trajectory (BENCH_train.json) ----

// trainBenchSide is one measured configuration of the hybrid-training A/B.
type trainBenchSide struct {
	ItersPerSec     float64 `json:"iters_per_sec"`
	GradKBPerIter   float64 `json:"grad_wire_kb_per_iter"`
	WeightKBPerIter float64 `json:"weight_wire_kb_per_iter"`
	FinalLoss       float64 `json:"final_loss"`
	MeanStaleness   float64 `json:"mean_staleness"`
}

// trainBenchReport is the BENCH_train.json schema, mirroring
// BENCH_serve.json: the same hybrid workload through the three exchange
// configurations the refactor enables — serialized fp32 (the pre-refactor
// behavior), overlapped fp32, and overlapped int8 — recording update
// throughput and bytes-on-wire per update, plus the HEP validation-accuracy
// cost of the quantised wire.
type trainBenchReport struct {
	Model             string         `json:"model"`
	Groups            int            `json:"groups"`
	WorkersPerGroup   int            `json:"workers_per_group"`
	GroupBatch        int            `json:"group_batch"`
	Updates           int            `json:"updates"`
	LockstepFP32      trainBenchSide `json:"lockstep_fp32"`
	Overlapped        trainBenchSide `json:"overlapped_fp32"`
	OverlappedInt8    trainBenchSide `json:"overlapped_int8"`
	OverlapSpeedup    float64        `json:"overlap_speedup"`
	Int8WireReduction float64        `json:"int8_wire_reduction"`
	HostCPUs          int            `json:"host_cpus"`

	ValAccuracyFP32 float64 `json:"val_accuracy_fp32"`
	ValAccuracyInt8 float64 `json:"val_accuracy_int8"`

	// Streaming-ingest A/B (PR 4): the same shard-backed training run with
	// the blocking reader and with the double-buffered prefetch pipeline.
	// Trajectories are bitwise identical (gated); the exposed-I/O delta is
	// the tentpole's figure of merit.
	IngestBlocking         ingestBenchSide `json:"ingest_blocking"`
	IngestPrefetched       ingestBenchSide `json:"ingest_prefetched"`
	IngestExposedReduction float64         `json:"ingest_exposed_reduction"`

	// Checkpoint A/B (PR 5): the same training run snapshotting every few
	// iterations with the synchronous writer (whole flush on the critical
	// path, as the paper ran) and the async double-buffered writer.
	// Trajectories are bitwise identical to the no-checkpoint run (gated);
	// the exposed-stall delta is PR 5's figure of merit.
	CkptSync             ckptBenchSide `json:"ckpt_sync"`
	CkptAsync            ckptBenchSide `json:"ckpt_async"`
	CkptExposedReduction float64       `json:"ckpt_exposed_reduction"`

	// Tracer overhead (PR 6): the same training run untraced and with the
	// phase tracer recording every span. The wall-clock delta is recorded
	// for the trajectory; the hard <1% gate is on EstOverheadFrac, the
	// deterministic product spans/iter × ns/span ÷ ns/iter (per-span cost
	// from a tight microbenchmark — stable where a 1% wall A/B on a shared
	// runner is noise). Traced and untraced weight hashes must match.
	TracerOverhead tracerBenchReport `json:"tracer_overhead"`

	// Pseudo (PR 9) is the flywheel section: pseudo-label quality vs.
	// confidence threshold against held-back truth, plus one full retrain on
	// labeled + discounted pseudo labels.
	Pseudo pseudoBenchBlock `json:"pseudo"`

	// Finetune (PR 10) is the transfer-learning A/B: the astro classifier
	// warm-started from a trained hep checkpoint (first conv frozen, rest
	// fine-tuned) versus the identical model trained from scratch, both
	// measured as updates-to-target-accuracy over a shared budget grid in
	// the scarce-label regime where transfer earns its keep. The
	// updates-to-target ordering is deterministic (seeded) and gated; the
	// frozen conv's wire saving per update is recorded alongside.
	Finetune finetuneBenchBlock `json:"finetune"`
}

// tracerBenchReport is the PR 6 tracer-overhead entry.
type tracerBenchReport struct {
	SpansPerIter        float64 `json:"spans_per_iter"`
	NsPerSpan           float64 `json:"ns_per_span"`
	UntracedItersPerSec float64 `json:"untraced_iters_per_sec"`
	TracedItersPerSec   float64 `json:"traced_iters_per_sec"`
	WallOverheadFrac    float64 `json:"wall_overhead_frac"` // recorded, noisy
	EstOverheadFrac     float64 `json:"est_overhead_frac"`  // gated < 0.01
}

// ingestBenchSide is one measured ingest configuration of the shard-backed
// training A/B.
type ingestBenchSide struct {
	ItersPerSec      float64 `json:"iters_per_sec"`
	StageMsPerIter   float64 `json:"stage_ms_per_iter"`
	ExposedMsPerIter float64 `json:"exposed_ms_per_iter"`
	OverlapFrac      float64 `json:"overlap_frac"`
}

// ckptBenchSide is one measured checkpoint-writer configuration.
type ckptBenchSide struct {
	Snapshots        int64   `json:"snapshots"`
	StageMsPerSnap   float64 `json:"stage_ms_per_snapshot"`
	WriteMsPerSnap   float64 `json:"write_ms_per_snapshot"`
	ExposedMsPerSnap float64 `json:"exposed_ms_per_snapshot"`
	OverlapFrac      float64 `json:"overlap_frac"`
}

// measureCkptSide trains with the given checkpoint writer mode and reports
// the per-snapshot staging/write/exposed split plus the final-weight hash
// for the bitwise-identity gate.
func measureCkptSide(t *testing.T, p core.Problem, async bool, iters, every int) (ckptBenchSide, uint64) {
	t.Helper()
	cfg := core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: iters,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 7, Prefetch: 1,
		Checkpoint: core.CheckpointConfig{Dir: t.TempDir(), Every: every, Async: async, Keep: 3},
	}
	res := core.TrainSync(p, cfg)
	n := float64(res.Ckpt.Snapshots)
	if n == 0 {
		n = 1
	}
	side := ckptBenchSide{
		Snapshots:        res.Ckpt.Snapshots,
		StageMsPerSnap:   res.Ckpt.StageSeconds / n * 1e3,
		WriteMsPerSnap:   res.Ckpt.WriteSeconds / n * 1e3,
		ExposedMsPerSnap: res.Ckpt.ExposedSeconds / n * 1e3,
		OverlapFrac:      res.Ckpt.Overlap(),
	}
	return side, weightsHash(res.FinalWeights)
}

// weightsHash is the shared FNV-1a digest over FinalWeights.
func weightsHash(weights [][][]float32) uint64 { return ckpt.FingerprintWeights(weights) }

func trainBenchProblem(seed uint64, n int) (*hep.Dataset, core.Problem) {
	cfg := hep.ModelConfig{Name: "bench-train", ImageSize: 16, Filters: 16, ConvUnits: 3, Classes: 2}
	rng := tensor.NewRNG(seed)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(cfg.ImageSize), n, 0.5, rng)
	return ds, hep.NewTrainingProblem(ds, cfg, 77)
}

func measureTrainSide(p core.Problem, overlap bool, codec string, cfg core.Config) (trainBenchSide, core.Result) {
	cfg.Overlap = overlap
	cfg.Codec = codec
	start := time.Now()
	res := core.TrainHybrid(p, cfg)
	wall := time.Since(start).Seconds()
	updates := float64(len(res.Stats))
	return trainBenchSide{
		ItersPerSec:     updates / wall,
		GradKBPerIter:   float64(res.Wire.GradBytes) / updates / 1024,
		WeightKBPerIter: float64(res.Wire.WeightBytes) / updates / 1024,
		FinalLoss:       res.FinalLoss,
		MeanStaleness:   res.MeanStaleness,
	}, res
}

// measureIngestSide trains the shard-backed HEP problem with the given
// ingest lookahead and reports throughput plus the staging/exposed-wait
// split, along with the final-weight hash for the bitwise-identity gate.
func measureIngestSide(t *testing.T, p core.Problem, prefetch, iters int) (ingestBenchSide, uint64) {
	t.Helper()
	cfg := core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: iters,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 7, Prefetch: prefetch,
	}
	start := time.Now()
	res := core.TrainSync(p, cfg)
	wall := time.Since(start).Seconds()
	n := float64(res.Ingest.Batches)
	if n == 0 {
		n = 1
	}
	side := ingestBenchSide{
		ItersPerSec:      float64(iters) / wall,
		StageMsPerIter:   res.Ingest.StageSeconds / n * 1e3,
		ExposedMsPerIter: res.Ingest.WaitSeconds / n * 1e3,
		OverlapFrac:      res.Ingest.Overlap(),
	}
	var h uint64 = 1469598103934665603
	for _, layer := range res.FinalWeights {
		for _, blob := range layer {
			for _, v := range blob {
				bits := uint64(math.Float32bits(v))
				for s := 0; s < 32; s += 8 {
					h ^= (bits >> s) & 0xff
					h *= 1099511628211
				}
			}
		}
	}
	return side, h
}

// hepValAccuracy trains the deterministic single-group configuration with
// the given codec and scores a held-out dataset.
func hepValAccuracy(codec string) float64 {
	_, p := trainBenchProblem(11, 256)
	rngVal := tensor.NewRNG(1234)
	val := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), 256, 0.5, rngVal)
	res := core.TrainHybrid(p, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 32, Iterations: 60,
		Solver: opt.NewAdam(2e-3), Seed: 9, Overlap: true, Codec: codec,
	})
	eval := p.NewReplica()
	core.InstallWeights(eval, res.FinalWeights)
	scores := hep.ScoreDataset(eval, val, 64)
	return hep.Accuracy(scores, val.Labels)
}

// TestEmitTrainBenchJSON measures the lockstep-fp32 / overlapped /
// overlapped-int8 training A/B and writes BENCH_train.json so the training
// perf trajectory is machine-readable across PRs. The wire-compression
// floor is gated hard (deterministic); throughput is recorded, and the
// overlap speedup is only gated where the host has the cores for the
// pipeline to use (G×W ≥ 4 concurrent workers need ≥4 ways of parallelism).
func TestEmitTrainBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("training A/B takes a few seconds")
	}
	const groups, workers, batch, iters = 2, 2, 32, 40
	cfg := core.Config{
		Groups: groups, WorkersPerGroup: workers, GroupBatch: batch, Iterations: iters,
		Seed: 7, PSShardElems: 64 << 10,
	}
	_, p := trainBenchProblem(11, 256)
	rep := trainBenchReport{
		Model:  "hep ConvUnits=3 Filters=16 ImageSize=16",
		Groups: groups, WorkersPerGroup: workers, GroupBatch: batch,
		Updates:  groups * iters,
		HostCPUs: runtime.NumCPU(),
	}
	// Each side builds its own replicas and fleet, so first-use setup
	// (plan compiles, wire buffer growth) is paid symmetrically.
	cfg.Solver = opt.NewAdam(2e-3)
	rep.LockstepFP32, _ = measureTrainSide(p, false, "fp32", cfg)
	cfg.Solver = opt.NewAdam(2e-3)
	rep.Overlapped, _ = measureTrainSide(p, true, "fp32", cfg)
	cfg.Solver = opt.NewAdam(2e-3)
	rep.OverlappedInt8, _ = measureTrainSide(p, true, "int8", cfg)

	rep.OverlapSpeedup = rep.Overlapped.ItersPerSec / rep.LockstepFP32.ItersPerSec
	rep.Int8WireReduction = rep.LockstepFP32.GradKBPerIter / rep.OverlappedInt8.GradKBPerIter
	rep.ValAccuracyFP32 = hepValAccuracy("fp32")
	rep.ValAccuracyInt8 = hepValAccuracy("int8")

	// Streaming-ingest A/B on a shard-backed dataset: real per-batch file
	// reads, blocking vs prefetched, same trajectory bit for bit.
	ingestDS, _ := trainBenchProblem(11, 256)
	shardPaths, err := ingestDS.SaveShards(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.OpenShardSet(shardPaths...)
	if err != nil {
		t.Fatal(err)
	}
	defer shards.Close()
	shardProblem := hep.NewTrainingProblem(ingestDS,
		hep.ModelConfig{Name: "bench-ingest", ImageSize: 16, Filters: 16, ConvUnits: 3, Classes: 2}, 77)
	shardProblem.Backing = shards
	const ingestIters = 60
	var hashBlocking, hashPrefetched uint64
	rep.IngestBlocking, hashBlocking = measureIngestSide(t, shardProblem, 0, ingestIters)
	rep.IngestPrefetched, hashPrefetched = measureIngestSide(t, shardProblem, 2, ingestIters)
	if rep.IngestPrefetched.ExposedMsPerIter > 0 {
		rep.IngestExposedReduction = rep.IngestBlocking.ExposedMsPerIter / rep.IngestPrefetched.ExposedMsPerIter
	}
	if hashBlocking != hashPrefetched {
		t.Errorf("prefetched ingest changed the weight trajectory: %#016x vs %#016x",
			hashPrefetched, hashBlocking)
	}

	// Checkpoint A/B (PR 5): sync vs async snapshot writer at a 1-in-5
	// cadence, plus a no-checkpoint baseline for the bitwise gate.
	_, ckptProblem := trainBenchProblem(11, 256)
	const ckptIters, ckptEvery = 40, 5
	plain := core.TrainSync(ckptProblem, core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: ckptIters,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 7, Prefetch: 1,
	})
	hashPlain := weightsHash(plain.FinalWeights)
	var hashCkptSync, hashCkptAsync uint64
	rep.CkptSync, hashCkptSync = measureCkptSide(t, ckptProblem, false, ckptIters, ckptEvery)
	rep.CkptAsync, hashCkptAsync = measureCkptSide(t, ckptProblem, true, ckptIters, ckptEvery)
	if hashCkptSync != hashPlain || hashCkptAsync != hashPlain {
		t.Errorf("checkpointing changed the weight trajectory: plain %#016x, sync %#016x, async %#016x",
			hashPlain, hashCkptSync, hashCkptAsync)
	}
	if rep.CkptAsync.ExposedMsPerSnap > 0 {
		rep.CkptExposedReduction = rep.CkptSync.ExposedMsPerSnap / rep.CkptAsync.ExposedMsPerSnap
	}

	// Tracer overhead A/B (PR 6): same problem, same seed, with and
	// without span recording on every hot-path phase.
	_, traceProblem := trainBenchProblem(11, 256)
	traceCfg := core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 40,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 7, Prefetch: 1,
	}
	start := time.Now()
	untraced := core.TrainSync(traceProblem, traceCfg)
	untracedWall := time.Since(start).Seconds()
	tracer := obs.NewTracer(0)
	traceCfg.Trace = tracer
	start = time.Now()
	traced := core.TrainSync(traceProblem, traceCfg)
	tracedWall := time.Since(start).Seconds()
	if hu, ht := weightsHash(untraced.FinalWeights), weightsHash(traced.FinalWeights); hu != ht {
		t.Errorf("tracing changed the weight trajectory: %#016x vs %#016x", ht, hu)
	}
	spans := int64(0)
	for _, ls := range tracer.Snapshot() {
		spans += int64(len(ls.Spans)) + ls.Dropped
	}
	// Per-span cost from a tight loop: 1M Begin/End pairs on one lane.
	lane := obs.NewTracer(0).Lane("overhead")
	const spanN = 1 << 20
	start = time.Now()
	for i := 0; i < spanN; i++ {
		lane.Begin(obs.PhaseFwd)
		lane.End(obs.PhaseFwd)
	}
	nsPerSpan := float64(time.Since(start).Nanoseconds()) / spanN
	trIters := float64(traceCfg.Iterations)
	rep.TracerOverhead = tracerBenchReport{
		SpansPerIter:        float64(spans) / trIters,
		NsPerSpan:           nsPerSpan,
		UntracedItersPerSec: trIters / untracedWall,
		TracedItersPerSec:   trIters / tracedWall,
		WallOverheadFrac:    tracedWall/untracedWall - 1,
	}
	rep.TracerOverhead.EstOverheadFrac = rep.TracerOverhead.SpansPerIter * nsPerSpan / (tracedWall / trIters * 1e9)
	if rep.TracerOverhead.EstOverheadFrac >= 0.01 {
		t.Errorf("tracer costs %.3f%% of iteration time (%.0f spans/iter at %.0f ns), over the 1%% budget",
			100*rep.TracerOverhead.EstOverheadFrac, rep.TracerOverhead.SpansPerIter, nsPerSpan)
	}

	rep.Pseudo = measurePseudoBench(t)
	rep.Finetune = measureFinetuneBench(t)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_train.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("lockstep-fp32: %.1f updates/s, %.1f KB grads/update", rep.LockstepFP32.ItersPerSec, rep.LockstepFP32.GradKBPerIter)
	t.Logf("overlapped:    %.1f updates/s (%.2fx)", rep.Overlapped.ItersPerSec, rep.OverlapSpeedup)
	t.Logf("overlap+int8:  %.1f updates/s, %.1f KB grads/update (%.2fx fewer bytes)",
		rep.OverlappedInt8.ItersPerSec, rep.OverlappedInt8.GradKBPerIter, rep.Int8WireReduction)
	t.Logf("val accuracy: fp32 %.3f vs int8 %.3f", rep.ValAccuracyFP32, rep.ValAccuracyInt8)
	t.Logf("ingest blocking:   %.1f iters/s, %.4f ms staged, %.4f ms exposed",
		rep.IngestBlocking.ItersPerSec, rep.IngestBlocking.StageMsPerIter, rep.IngestBlocking.ExposedMsPerIter)
	t.Logf("ingest prefetched: %.1f iters/s, %.4f ms staged, %.4f ms exposed (%.0f%% overlapped)",
		rep.IngestPrefetched.ItersPerSec, rep.IngestPrefetched.StageMsPerIter,
		rep.IngestPrefetched.ExposedMsPerIter, 100*rep.IngestPrefetched.OverlapFrac)
	t.Logf("ckpt sync:  %d snaps, %.4f ms staged, %.4f ms written, %.4f ms exposed per snapshot",
		rep.CkptSync.Snapshots, rep.CkptSync.StageMsPerSnap, rep.CkptSync.WriteMsPerSnap, rep.CkptSync.ExposedMsPerSnap)
	t.Logf("ckpt async: %d snaps, %.4f ms staged, %.4f ms written, %.4f ms exposed per snapshot (%.0f%% hidden, %.2fx less exposed)",
		rep.CkptAsync.Snapshots, rep.CkptAsync.StageMsPerSnap, rep.CkptAsync.WriteMsPerSnap,
		rep.CkptAsync.ExposedMsPerSnap, 100*rep.CkptAsync.OverlapFrac, rep.CkptExposedReduction)
	t.Logf("tracer: %.1f spans/iter at %.0f ns/span -> %.4f%% estimated overhead (wall delta %+.1f%%, recorded not gated)",
		rep.TracerOverhead.SpansPerIter, rep.TracerOverhead.NsPerSpan,
		100*rep.TracerOverhead.EstOverheadFrac, 100*rep.TracerOverhead.WallOverheadFrac)
	for _, row := range rep.Pseudo.Thresholds {
		t.Logf("pseudo threshold %.2f: coverage %.2f, label accuracy %.3f",
			row.Threshold, row.PseudoCoverage, row.PseudoLabelAccuracy)
	}
	t.Logf("pseudo retrain at %.2f (kept %d): val %.3f -> %.3f (%+.3f, recorded not gated)",
		rep.Pseudo.RetrainThreshold, rep.Pseudo.RetrainKept,
		rep.Pseudo.BaseValAccuracy, rep.Pseudo.RetrainValAccuracy, rep.Pseudo.RetrainDelta)
	// Label quality must fall off sensibly: coverage is monotone
	// non-increasing in threshold — deterministic, gated everywhere.
	for i := 1; i < len(rep.Pseudo.Thresholds); i++ {
		lo, hi := rep.Pseudo.Thresholds[i-1], rep.Pseudo.Thresholds[i]
		if hi.PseudoCoverage > lo.PseudoCoverage {
			t.Errorf("pseudo coverage rose %.3f -> %.3f as threshold rose %.2f -> %.2f",
				lo.PseudoCoverage, hi.PseudoCoverage, lo.Threshold, hi.Threshold)
		}
	}

	for i, b := range rep.Finetune.BudgetGrid {
		t.Logf("finetune A/B budget %2d: finetune %.3f vs scratch %.3f",
			b, rep.Finetune.FinetuneAccuracy[i], rep.Finetune.ScratchAccuracy[i])
	}
	t.Logf("finetune updates-to-%.0f%%: %d vs scratch %d (%.1fx fewer); grads/update %.2f vs %.2f KB (%.2fx less wire)",
		100*rep.Finetune.TargetAccuracy, rep.Finetune.FinetuneUpdatesToTarget, rep.Finetune.ScratchUpdatesToTarget,
		rep.Finetune.UpdateAdvantage, rep.Finetune.FinetuneGradKBPerUpdate, rep.Finetune.ScratchGradKBPerUpdate,
		rep.Finetune.FinetuneWireReduction)
	// The PR 10 transfer gate, deterministic (seeded data, seeded init,
	// single-worker synchronous training — no wall-clock anywhere): the
	// fine-tuned model must reach the target accuracy in measurably fewer
	// updates than from-scratch training, and the frozen conv must shrink
	// per-update gradient traffic.
	if ft := rep.Finetune.FinetuneUpdatesToTarget; ft < 0 {
		t.Errorf("fine-tune arm never reached %.0f%% accuracy within the budget grid %v",
			100*rep.Finetune.TargetAccuracy, rep.Finetune.BudgetGrid)
	} else if sc := rep.Finetune.ScratchUpdatesToTarget; sc >= 0 && ft >= sc {
		t.Errorf("fine-tuning took %d updates to target vs scratch %d — transfer must be measurably faster", ft, sc)
	}
	if rep.Finetune.FinetuneWireReduction <= 1 {
		t.Errorf("frozen conv must cut per-update gradient bytes: finetune %.2f vs scratch %.2f KB/update",
			rep.Finetune.FinetuneGradKBPerUpdate, rep.Finetune.ScratchGradKBPerUpdate)
	}

	if rep.Int8WireReduction < 3 {
		t.Errorf("int8 wire must cut gradient bytes ≥3x, got %.2fx", rep.Int8WireReduction)
	}
	if d := rep.ValAccuracyFP32 - rep.ValAccuracyInt8; d > 0.01 {
		t.Errorf("int8 exchange costs %.3f validation accuracy (>1%%)", d)
	}
	// Wall-clock policy (matches TestEmitServeBenchJSON): ratios are
	// recorded in the JSON and the 1.2x overlap target is reported, but
	// only a 1.0x regression floor is hard-gated, and only on hosts with
	// enough CPUs for the pipeline to exist — shared-runner timing noise
	// must not fail CI.
	if runtime.NumCPU() >= 4 {
		if rep.OverlapSpeedup < 1.0 {
			t.Errorf("overlap slowed training to %.2fx on a %d-CPU host", rep.OverlapSpeedup, runtime.NumCPU())
		}
		if rep.OverlapSpeedup < 1.2 {
			t.Logf("note: overlap speedup %.2fx below the 1.2x target this run (timing noise expected on shared runners)", rep.OverlapSpeedup)
		}
	} else {
		t.Logf("note: %d-CPU host cannot exercise G×W=%d-way overlap; speedup %.2fx recorded, not gated",
			runtime.NumCPU(), groups*workers, rep.OverlapSpeedup)
	}
	// Ingest exposure follows the same wall-clock policy: the prefetcher
	// needs a spare core to hide shard reads behind compute, so the
	// reduction is gated only where one exists and recorded everywhere
	// (the bitwise-identity gate above is unconditional).
	if runtime.NumCPU() >= 2 {
		if rep.IngestPrefetched.ExposedMsPerIter >= rep.IngestBlocking.ExposedMsPerIter {
			t.Errorf("prefetch left %.4f ms/iter of I/O exposed vs blocking %.4f on a %d-CPU host",
				rep.IngestPrefetched.ExposedMsPerIter, rep.IngestBlocking.ExposedMsPerIter, runtime.NumCPU())
		}
	} else {
		t.Logf("note: %d-CPU host cannot overlap ingest with compute; exposed I/O %.4f vs %.4f ms/iter recorded, not gated",
			runtime.NumCPU(), rep.IngestPrefetched.ExposedMsPerIter, rep.IngestBlocking.ExposedMsPerIter)
	}
	// Checkpoint exposure follows the same policy: the background writer
	// needs a spare core to flush behind compute, so the reduction is
	// gated only where one exists (the bitwise gate above is
	// unconditional; both writers always record).
	if runtime.NumCPU() >= 2 {
		if rep.CkptAsync.ExposedMsPerSnap >= rep.CkptSync.ExposedMsPerSnap {
			t.Errorf("async checkpointing left %.4f ms/snapshot exposed vs sync %.4f on a %d-CPU host",
				rep.CkptAsync.ExposedMsPerSnap, rep.CkptSync.ExposedMsPerSnap, runtime.NumCPU())
		}
	} else {
		t.Logf("note: %d-CPU host cannot flush snapshots behind compute; exposed %.4f vs %.4f ms/snapshot recorded, not gated",
			runtime.NumCPU(), rep.CkptAsync.ExposedMsPerSnap, rep.CkptSync.ExposedMsPerSnap)
	}
}

// ---- Bulk offline scoring tier (PR 9) ----

// bulkBenchSide is one measured bulk-scoring configuration over the fixed
// unlabeled shard set.
type bulkBenchSide struct {
	SamplesPerSec float64 `json:"bulk_samples_per_sec"`
	Seconds       float64 `json:"seconds"`
}

// bulkBenchBlock is the offline tier of serveBenchReport: the same trained
// model scoring the same shard set through the throughput-first bulk
// engine (fp32 and int8), through a two-backend work-stealing fleet over
// loopback TCP, and — the baseline — one sample at a time through the
// latency-tuned online Submit path. bulk_vs_online_gain is the headline
// ratio; wall-clock, so gated only on multi-core hosts and recorded
// everywhere. The warm bulk path's 0-alloc property is gated
// deterministically in internal/bulk and internal/serve.
type bulkBenchBlock struct {
	Samples          int           `json:"samples"`
	Batch            int           `json:"batch"`
	BulkFP32         bulkBenchSide `json:"bulk_fp32"`
	BulkInt8         bulkBenchSide `json:"bulk_int8"`
	OnlineSubmit     bulkBenchSide `json:"online_submit"`
	BulkFleetPair    bulkBenchSide `json:"bulk_fleet_pair"`
	BulkVsOnlineGain float64       `json:"bulk_vs_online_gain"`
	BulkInt8Gain     float64       `json:"bulk_int8_gain"`
}

func measureBulkBench(t *testing.T, samples, batch int) bulkBenchBlock {
	t.Helper()
	cfg := hep.ModelConfig{Name: "bench-bulk", ImageSize: 4, Filters: 16, ConvUnits: 2, Classes: 2}
	rng := tensor.NewRNG(7)
	net := hep.BuildNet(cfg, rng)
	path := filepath.Join(t.TempDir(), "bulk.d15w")
	if err := nn.SaveFile(path, net.Params()); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	serve.RegisterHEP(reg, "bench-bulk", cfg)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(cfg.ImageSize), samples, 0.5, rng)
	shardPaths, err := ds.SaveShards(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := data.OpenShardSet(shardPaths...)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	load := func(prec serve.Precision) *serve.LoadedModel {
		lm, err := reg.Load("bench-bulk", path, prec)
		if err != nil {
			t.Fatal(err)
		}
		if prec == serve.Int8 {
			idx := make([]int, 64)
			for i := range idx {
				idx[i] = i
			}
			x, _ := ds.Batch(idx)
			if err := lm.Calibrate(x); err != nil {
				t.Fatal(err)
			}
		}
		return lm
	}
	score := func(lm *serve.LoadedModel) bulkBenchSide {
		eng, err := bulk.NewEngine(lm, bulk.Config{Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		var p bulk.Predictions
		if _, err := eng.Score(ss, &p); err != nil { // warm: plan compile
			t.Fatal(err)
		}
		res, err := eng.Score(ss, &p)
		if err != nil {
			t.Fatal(err)
		}
		return bulkBenchSide{SamplesPerSec: res.SamplesPerSec, Seconds: res.Seconds}
	}

	blk := bulkBenchBlock{Samples: samples, Batch: batch}
	lm32 := load(serve.Float32)
	blk.BulkFP32 = score(lm32)
	blk.BulkInt8 = score(load(serve.Int8))

	// Baseline: the same sample count pushed one request at a time through
	// the online dynamic batcher — linger, queue, per-request envelope and
	// response copy all on the path.
	srv, err := serve.NewServer(lm32, serve.Config{MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	per := 3 * cfg.ImageSize * cfg.ImageSize
	inputs := make([]*serve.LoadInput, 64)
	for i := range inputs {
		inputs[i] = &serve.LoadInput{X: tensor.FromSlice(ds.Images.Data[i*per:(i+1)*per], 3, cfg.ImageSize, cfg.ImageSize)}
	}
	if res := serve.RunClosedLoop(srv, inputs, 16, samples/4); res.Err != nil {
		t.Fatal(res.Err)
	}
	lr := serve.RunClosedLoop(srv, inputs, 16, samples)
	srv.Close()
	if lr.Err != nil {
		t.Fatal(lr.Err)
	}
	blk.OnlineSubmit = bulkBenchSide{SamplesPerSec: lr.Throughput, Seconds: lr.Wall.Seconds()}

	// Fleet: the same shards stolen off the shared queue by two loopback
	// backends, whole batches on the wire.
	var nss []*netserve.Server
	var addrs []string
	for i := 0; i < 2; i++ {
		eng, err := serve.NewServer(lm32, serve.Config{MaxBatch: batch, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		ns, err := netserve.NewServer("127.0.0.1:0", map[string]*serve.Server{"bench-bulk": eng}, netserve.ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		nss = append(nss, ns)
		addrs = append(addrs, ns.Addr())
	}
	defer func() {
		for _, ns := range nss {
			ns.Close()
		}
	}()
	fcfg := bulk.Config{Batch: batch, InShape: []int{3, cfg.ImageSize, cfg.ImageSize}}
	var pf bulk.Predictions
	if _, err := bulk.ScoreFleet(addrs, "bench-bulk", ss, fcfg, &pf); err != nil { // warm
		t.Fatal(err)
	}
	fres, err := bulk.ScoreFleet(addrs, "bench-bulk", ss, fcfg, &pf)
	if err != nil {
		t.Fatal(err)
	}
	blk.BulkFleetPair = bulkBenchSide{SamplesPerSec: fres.SamplesPerSec, Seconds: fres.Seconds}

	blk.BulkVsOnlineGain = blk.BulkFP32.SamplesPerSec / blk.OnlineSubmit.SamplesPerSec
	blk.BulkInt8Gain = blk.BulkInt8.SamplesPerSec / blk.BulkFP32.SamplesPerSec
	return blk
}

// ---- Pseudo-label quality (PR 9) ----

// pseudoThresholdRow is label quality at one confidence cut: what fraction
// of the unlabeled pool survives and how often the surviving argmax labels
// match held-back truth.
type pseudoThresholdRow struct {
	Threshold           float64 `json:"threshold"`
	PseudoCoverage      float64 `json:"pseudo_coverage"`
	PseudoLabelAccuracy float64 `json:"pseudo_label_accuracy"`
}

// pseudoBenchBlock is the flywheel section of trainBenchReport: a model
// trained on the labeled split scores the unlabeled pool, label quality is
// tabulated against threshold, and one full retrain on labeled +
// discounted pseudo labels records the validation-accuracy delta.
type pseudoBenchBlock struct {
	LabeledSamples     int                  `json:"labeled_samples"`
	UnlabeledSamples   int                  `json:"unlabeled_samples"`
	Thresholds         []pseudoThresholdRow `json:"pseudo_thresholds"`
	RetrainThreshold   float64              `json:"pseudo_retrain_threshold"`
	RetrainKept        int                  `json:"pseudo_retrain_kept"`
	BaseValAccuracy    float64              `json:"base_val_accuracy"`
	RetrainValAccuracy float64              `json:"pseudo_retrain_val_accuracy"`
	RetrainDelta       float64              `json:"pseudo_retrain_delta"`
}

// ---- Transfer learning A/B (PR 10) ----

// finetuneBenchBlock is the fine-tune-vs-scratch section of
// trainBenchReport. Both arms share the same 32-cutout astro training set,
// the same solver and seeds, and the same budget grid; the only difference
// is initialisation (hep-donor warm start with conv1 frozen vs. fresh
// random weights). finetune_updates_to_target < scratch_updates_to_target
// is the PR 10 gate.
type finetuneBenchBlock struct {
	DonorUpdates     int       `json:"donor_updates"`
	LabeledCutouts   int       `json:"labeled_cutouts"`
	TargetAccuracy   float64   `json:"finetune_target_accuracy"`
	BudgetGrid       []int     `json:"finetune_budget_grid"`
	FinetuneAccuracy []float64 `json:"finetune_accuracy_by_budget"`
	ScratchAccuracy  []float64 `json:"scratch_accuracy_by_budget"`
	// Updates-to-target: the smallest budget in the grid whose held-out
	// accuracy reaches TargetAccuracy (-1 = never within the grid).
	FinetuneUpdatesToTarget int     `json:"finetune_updates_to_target"`
	ScratchUpdatesToTarget  int     `json:"scratch_updates_to_target"`
	UpdateAdvantage         float64 `json:"finetune_update_advantage"`
	// Wire cost per update: the frozen conv pushes zero gradient bytes, so
	// the fine-tune arm's per-update gradient traffic is strictly smaller.
	FinetuneGradKBPerUpdate float64 `json:"finetune_grad_kb_per_update"`
	ScratchGradKBPerUpdate  float64 `json:"scratch_grad_kb_per_update"`
	FinetuneWireReduction   float64 `json:"finetune_wire_reduction"`
}

// measureFinetuneBench trains the hep donor, then runs both arms of the
// astro A/B over the budget grid. Everything is seeded; the numbers are
// reproducible bit for bit on one host.
func measureFinetuneBench(t *testing.T) finetuneBenchBlock {
	t.Helper()
	const donorIters, donorEvents = 40, 256
	const trainCutouts, testCutouts = 32, 1024
	blk := finetuneBenchBlock{
		DonorUpdates:   donorIters,
		LabeledCutouts: trainCutouts,
		TargetAccuracy: 0.45,
		BudgetGrid:     []int{4, 6, 8, 10, 14, 18, 24},
	}

	// Donor: a trained hep classifier with the astro backbone's geometry
	// (16px, 8 filters, 3 conv units — the cmd/heptrain defaults).
	dcfg := hep.ModelConfig{Name: "bench-donor", ImageSize: 16, Filters: 8, ConvUnits: 3, Classes: 2}
	drng := tensor.NewRNG(42)
	dds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), donorEvents, 0.5, drng)
	dp := hep.NewTrainingProblem(dds, dcfg, 43)
	dres := core.TrainSync(dp, core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 64, Iterations: donorIters,
		Solver: opt.NewAdamFull(2e-3, 0.9, 0.999, 1e-8), Seed: 42, Prefetch: 1,
	})
	drep := dp.NewReplica()
	core.InstallWeights(drep, dres.FinalWeights)
	dpath := filepath.Join(t.TempDir(), "donor.d15w")
	if err := nn.SaveFile(dpath, hep.ReplicaParams(drep)); err != nil {
		t.Fatal(err)
	}
	donor, err := nn.ReadWeightBlobsFile(dpath)
	if err != nil {
		t.Fatal(err)
	}

	// Shared astro data: a scarce labeled set and a large held-out eval set.
	arng := tensor.NewRNG(42)
	ar := astro.NewRenderer(16)
	gen := astro.DefaultGenConfig()
	train := astro.GenerateDataset(gen, ar, trainCutouts, arng)
	test := astro.GenerateDataset(gen, ar, testCutouts, arng)
	model := astro.ModelConfig{Name: "bench-astro", ImageSize: 16, Filters: 8, ConvUnits: 3, Classes: astro.NumClasses}
	trainCfg := func(budget int) core.Config {
		return core.Config{
			Groups: 1, WorkersPerGroup: 1, GroupBatch: 32, Iterations: budget,
			Solver: opt.NewAdamFull(1e-2, 0.9, 0.999, 1e-8), Seed: 42, Prefetch: 1,
		}
	}
	// Fine-tune arm: conv1 frozen (zero gradient bytes on the wire for that
	// layer), conv2+ fine-tuned from the donor, fresh 3-class head.
	freeze := astro.BackboneLayerNames(model.ConvUnits)[:1]
	for _, budget := range blk.BudgetGrid {
		ftp, _, err := astro.NewTransferProblem(train, model, 43, donor, freeze)
		if err != nil {
			t.Fatal(err)
		}
		ftRes := core.TrainSync(ftp, trainCfg(budget))
		ftRep := ftp.NewReplica()
		core.InstallWeights(ftRep, ftRes.FinalWeights)
		blk.FinetuneAccuracy = append(blk.FinetuneAccuracy, astro.EvalAccuracy(ftRep, test, 64))

		scp := astro.NewTrainingProblem(train, model, 43)
		scRes := core.TrainSync(scp, trainCfg(budget))
		scRep := scp.NewReplica()
		core.InstallWeights(scRep, scRes.FinalWeights)
		blk.ScratchAccuracy = append(blk.ScratchAccuracy, astro.EvalAccuracy(scRep, test, 64))
	}
	// Wire cost per update, measured through the hybrid trainer's real
	// parameter-server exchange (single-worker sync training has no wire).
	hybridCfg := core.Config{
		Groups: 2, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewAdamFull(1e-2, 0.9, 0.999, 1e-8), Seed: 42, Prefetch: 1,
	}
	ftp, _, err := astro.NewTransferProblem(train, model, 43, donor, freeze)
	if err != nil {
		t.Fatal(err)
	}
	ftWire := core.TrainHybrid(ftp, hybridCfg)
	scWire := core.TrainHybrid(astro.NewTrainingProblem(train, model, 43), hybridCfg)
	blk.FinetuneGradKBPerUpdate = float64(ftWire.Wire.GradBytes) / float64(len(ftWire.Stats)) / 1024
	blk.ScratchGradKBPerUpdate = float64(scWire.Wire.GradBytes) / float64(len(scWire.Stats)) / 1024
	if blk.FinetuneGradKBPerUpdate > 0 {
		blk.FinetuneWireReduction = blk.ScratchGradKBPerUpdate / blk.FinetuneGradKBPerUpdate
	}
	blk.FinetuneUpdatesToTarget = updatesToTarget(blk.BudgetGrid, blk.FinetuneAccuracy, blk.TargetAccuracy)
	blk.ScratchUpdatesToTarget = updatesToTarget(blk.BudgetGrid, blk.ScratchAccuracy, blk.TargetAccuracy)
	if blk.FinetuneUpdatesToTarget > 0 && blk.ScratchUpdatesToTarget > 0 {
		blk.UpdateAdvantage = float64(blk.ScratchUpdatesToTarget) / float64(blk.FinetuneUpdatesToTarget)
	}
	return blk
}

// updatesToTarget returns the smallest budget whose accuracy reaches the
// target, or -1 if none in the grid does.
func updatesToTarget(grid []int, accs []float64, target float64) int {
	for i, b := range grid {
		if accs[i] >= target {
			return b
		}
	}
	return -1
}

func measurePseudoBench(t *testing.T) pseudoBenchBlock {
	t.Helper()
	const labeledN, unlabeledN, valN = 256, 256, 256
	mcfg := hep.ModelConfig{Name: "bench-pseudo", ImageSize: 16, Filters: 16, ConvUnits: 3, Classes: 2}
	rng := tensor.NewRNG(11)
	labeled := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), labeledN, 0.5, rng)
	unlabeled := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), unlabeledN, 0.5, rng)
	val := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), valN, 0.5, tensor.NewRNG(1234))
	trainCfg := core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 32, Iterations: 60,
		Solver: opt.NewAdam(2e-3), Seed: 9, Overlap: true, Codec: "fp32",
	}
	valAcc := func(p core.Problem, res core.Result) float64 {
		eval := p.NewReplica()
		core.InstallWeights(eval, res.FinalWeights)
		return hep.Accuracy(hep.ScoreDataset(eval, val, 64), val.Labels)
	}

	// v1: labeled split only.
	p1 := hep.NewTrainingProblem(labeled, mcfg, 77)
	res1 := core.TrainHybrid(p1, trainCfg)
	blk := pseudoBenchBlock{
		LabeledSamples: labeledN, UnlabeledSamples: unlabeledN,
		BaseValAccuracy: valAcc(p1, res1),
	}

	// Serve v1's weights and bulk-score the unlabeled pool.
	eval := p1.NewReplica()
	core.InstallWeights(eval, res1.FinalWeights)
	wpath := filepath.Join(t.TempDir(), "pseudo.d15w")
	if err := nn.SaveFile(wpath, hep.ReplicaParams(eval)); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	serve.RegisterHEP(reg, "bench-pseudo", mcfg)
	lm, err := reg.Load("bench-pseudo", wpath, serve.Float32)
	if err != nil {
		t.Fatal(err)
	}
	shardPaths, err := unlabeled.SaveShards(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := data.OpenShardSet(shardPaths...)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	eng, err := bulk.NewEngine(lm, bulk.Config{Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	var preds bulk.Predictions
	if _, err := eng.Score(ss, &preds); err != nil {
		t.Fatal(err)
	}

	// Label quality vs threshold, graded against held-back truth.
	for _, thr := range []float32{0.5, 0.8, 0.95} {
		kept, correct := 0, 0
		for i, c := range preds.Conf {
			if c >= thr {
				kept++
				if int(preds.Label[i]) == unlabeled.Labels[i] {
					correct++
				}
			}
		}
		row := pseudoThresholdRow{Threshold: float64(thr)}
		if kept > 0 {
			row.PseudoCoverage = float64(kept) / unlabeledN
			row.PseudoLabelAccuracy = float64(correct) / float64(kept)
		}
		blk.Thresholds = append(blk.Thresholds, row)
	}

	// One full retrain at the paper's 0.8 cut: pseudo shards written and
	// reloaded through the real factory path, machine labels at weight 0.5.
	blk.RetrainThreshold = 0.8
	pseudoPaths, st, err := bulk.WritePseudoShards(t.TempDir(), 2, ss, &preds, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	blk.RetrainKept = st.Kept
	if len(pseudoPaths) > 0 {
		pseudoDS, err := hep.LoadShardDataset(pseudoPaths...)
		if err != nil {
			t.Fatal(err)
		}
		combined := labeled.Append(pseudoDS)
		weights := make([]float32, len(combined.Labels))
		for i := range weights {
			if i < labeledN {
				weights[i] = 1
			} else {
				weights[i] = 0.5
			}
		}
		p2 := hep.NewTrainingProblem(combined, mcfg, 77)
		p2.SampleWeights = weights
		res2 := core.TrainHybrid(p2, trainCfg)
		blk.RetrainValAccuracy = valAcc(p2, res2)
		blk.RetrainDelta = blk.RetrainValAccuracy - blk.BaseValAccuracy
	}
	return blk
}
